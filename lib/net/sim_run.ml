module E = Histories.Event

type outcome = {
  history : int E.t list;
  timed : (float * int E.t) list;
  monitor_violation : string option;
  txn_violations : string list;
  fastcheck_ok : bool;
  key_fastcheck : (int * bool) list;
  key_violations : (int * string) list;
  completed : int;
  expected : int;
  steps : int;
  virtual_span : float;
  latencies : (E.proc * int E.op * float) list;
  net : Sim_net.stats;
  quorum : Engine.stats;
  metrics : Metrics.t;
  epoch : int;
  reconfig_acked : bool option;
}

(* Extended workload ops: the plain register scripts plus the
   multi-key operations of this layer. *)
type xop =
  | Single of int E.op
  | Keyed of int * int E.op
  | Txn_w of (int * int) list
  | Snap of int list

type xprocess = { xproc : E.proc; xscript : xop list }

(* One multi-key op answers once but records one Invoke/Respond pair
   per touched key, so completion accounting weighs it by its keys. *)
let xop_weight = function
  | Single _ | Keyed _ -> 1
  | Txn_w ws -> List.length ws
  | Snap ks -> List.length ks

(* the reconfiguration requester is a client node of its own, distinct
   from any workload process, so it shares the clients' fault immunity
   without owning a session *)
let control_proc = 99

type client = {
  proc : E.proc;
  mutable todo : xop list;
  mutable next_seq : int;
}

let is_client n = n >= 200

let latencies_of timed =
  let pending = Hashtbl.create 16 in
  List.fold_left
    (fun acc (time, ev) ->
      match ev with
      | E.Invoke (p, op) ->
        Hashtbl.replace pending p (time, op);
        acc
      | E.Respond (p, _) ->
        (match Hashtbl.find_opt pending p with
         | Some (t0, op) ->
           Hashtbl.remove pending p;
           (p, op, time -. t0) :: acc
         | None -> acc))
    [] timed
  |> List.rev

(* Per-key post-hoc verdicts: each key's subsequence of the server
   history is an independent two-writer history, checked on its own. *)
let fastcheck_by_key ~init keyed =
  let keys =
    List.sort_uniq compare (List.map fst keyed)
  in
  List.map
    (fun key ->
      let h = List.filter_map (fun (k, e) -> if k = key then Some e else None) keyed in
      let ok =
        match Histories.Operation.of_events h with
        | Error _ -> false
        | Ok ops ->
          (match Histories.Fastcheck.check_unique ~init ops with
           | Histories.Fastcheck.Atomic _ -> true
           | Histories.Fastcheck.Violation _ -> false)
      in
      (key, ok))
    keys

type cluster = {
  net : Sim_net.t;
  server : Server.t;
  replica_nodes : int list;
  init : int;
  expected : int;
  metrics : Metrics.t;
  durable : bool;
  disks : Storage.Disk.t array;
  replica_of : int -> Replica.t;
  reconfig_ack : bool option ref;
}

let build ?(faults = Sim_net.reliable) ?(replicas = 3) ?(window = 4)
    ?(shards = 1) ?group_size ?keys ?(engine = Engine.default) ?read_quorum
    ?(durable = true) ?(snapshot_every = 32) ?gc_bytes ?group_commit
    ?(audit = true) ?(xprocesses = []) ?torn_txn ?reconfig ?reconfig_at
    ?skip_dual_write ?metrics ?measure ?trace ~seed ~init ~processes () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let nkeys = max 1 (match keys with Some k -> k | None -> shards) in
  (* plain register processes are the [Single]-only special case *)
  let xprocesses =
    match xprocesses with
    | [] ->
      List.map
        (fun { Registers.Vm.proc; script } ->
          { xproc = proc; xscript = List.map (fun op -> Single op) script })
        processes
    | xs -> xs
  in
  let faults =
    {
      faults with
      Sim_net.immune =
        (fun ~src ~dst ->
          is_client src || is_client dst || faults.Sim_net.immune ~src ~dst);
    }
  in
  let net = Sim_net.create ~seed ~faults ~metrics ?trace () in
  let tr = Sim_net.transport net in
  (* the byte-accounting tap for benchmarks: observe every send (the
     hook filters by src/dst itself), then hand the frame to the sim *)
  let tr =
    match measure with
    | None -> tr
    | Some f ->
      {
        tr with
        Transport.send =
          (fun ~src ~dst msg ->
            f ~src ~dst msg;
            tr.Transport.send ~src ~dst msg);
      }
  in
  let replica_nodes = List.init replicas Fun.id in
  (* replicas: each owns a simulated disk (when durable) and an
     incarnation cell, swapped by the amnesia recovery hook *)
  let disks =
    if durable then Array.init replicas (fun _ -> Storage.Disk.create ())
    else [||]
  in
  let unordered = engine.Engine.unordered in
  let fresh_replica r =
    if durable then
      Replica.create ~init
        ~storage:
          (Storage.create ~snapshot_every ?gc_bytes ?group_commit
             (Storage.Disk.backend disks.(r)))
        ~unordered ()
    else Replica.create ~init ~unordered ()
  in
  let incarnations = Array.init replicas fresh_replica in
  List.iter
    (fun r ->
      (* group-commit flush driver: a handler turn that leaves entries
         pending arms a one-shot flush timer (zero deadline: flush
         before the turn ends).  Armed unconditionally, no armed flag —
         Sim_net silently skips timers for dead nodes, so a flag would
         wedge across a crash; a duplicate timer just flushes an empty
         queue.  Deterministic: fixed delay, same arming schedule. *)
      let rec arm_flush rep =
        match Replica.storage rep with
        | Some st when Storage.pending st > 0 ->
          let d = Storage.flush_deadline st in
          if d <= 0.0 then Storage.flush st
          else
            tr.Transport.set_timer ~node:r ~delay:d (fun () ->
                (* physical-equality incarnation guard: after an
                   amnesia restart the cell holds a fresh replica and
                   this timer must not flush the old one's queue.
                   Socket_net applies the same guard to endpoint
                   re-listens (Transport.set_timer's contract). *)
                if incarnations.(r) == rep then begin
                  Storage.flush st;
                  arm_flush rep
                end)
        | _ -> ()
      in
      Sim_net.register net r (fun ~src msg ->
          let rep = incarnations.(r) in
          (* replies — including group-commit acks deferred past this
             turn — may only leave a live, current incarnation: the
             handler may have been killed mid-message by a disk crash
             hook (a store whose WAL append was torn is never acked),
             and a stale incarnation must not speak for, or flush the
             disk under, its replacement *)
          let emit (dst, m) =
            if Sim_net.alive net r && incarnations.(r) == rep then
              tr.Transport.send ~src:r ~dst m
          in
          Replica.handle_emit rep ~src ~emit msg;
          if Sim_net.alive net r then arm_flush rep);
      Sim_net.on_restart net r (fun () ->
          (* amnesia restart: the in-memory incarnation is gone.  With
             durability the replacement recovers snapshot+WAL from the
             replica's disk; without, it comes back empty — exactly
             the forgotten-acknowledgement bug the explorer hunts *)
          if durable then Storage.Disk.revive disks.(r);
          incarnations.(r) <- fresh_replica r))
    replica_nodes;
  (* server; retransmission period must exceed a replica round trip *)
  let resend_every = (4.0 *. faults.Sim_net.max_delay) +. 1.0 in
  let map = Shard_map.create ?group_size ~shards () in
  let server =
    Server.create ~transport:tr ~audit ~resend_every ~engine ?read_quorum
      ?torn_txn ?skip_dual_write ~metrics ?trace ~map ~me:Transport.server
      ~replicas:replica_nodes ~init ()
  in
  Sim_net.register net Transport.server (Server.on_message server);
  (* migration request: a dedicated control client whose frame is
     enqueued like any other message — under the explorer its delivery
     is a schedulable event, so the handoff interleaves freely with the
     workload; [reconfig_at] instead fires it at a virtual time *)
  let reconfig_ack = ref None in
  (match reconfig with
   | None -> ()
   | Some (rkey, to_shard) ->
     let me = Transport.client control_proc in
     Sim_net.register net me (fun ~src:_ msg ->
         match msg with
         | Wire.Reconfig_ack { ok; _ } -> reconfig_ack := Some ok
         | _ -> ());
     let send () =
       tr.Transport.send ~src:me ~dst:Transport.server
         (Wire.Reconfig { rid = 0; key = rkey; to_shard; epoch = 0 })
     in
     (match reconfig_at with
      | None -> send ()
      | Some time -> Sim_net.at net time send));
  (* clients: send [Hello; first window] as one batch, then keep the
     window full as responses arrive.  With a multi-key keyspace each
     process round-robins its script over the keys, so a window > 1
     keeps several per-key pipelines busy at once. *)
  List.iter
    (fun { xproc = proc; xscript } ->
      let me = Transport.client proc in
      let c = { proc; todo = xscript; next_seq = 0 } in
      let next_req () =
        match c.todo with
        | [] -> None
        | xop :: rest ->
          c.todo <- rest;
          let seq = c.next_seq in
          c.next_seq <- seq + 1;
          let op =
            match xop with
            | Single op ->
              if nkeys = 1 then
                match op with E.Read -> Wire.Read | E.Write v -> Wire.Write v
              else
                let key = seq mod nkeys in
                (match op with
                 | E.Read -> Wire.Read_k { key }
                 | E.Write v -> Wire.Write_k { key; value = v })
            | Keyed (key, E.Read) -> Wire.Read_k { key }
            | Keyed (key, E.Write v) -> Wire.Write_k { key; value = v }
            | Txn_w writes -> Wire.Txn_k { writes }
            | Snap keys -> Wire.Snap_k { keys }
          in
          Some (Wire.Req { seq; op })
      in
      Sim_net.register net me (fun ~src:_ msg ->
          match msg with
          | Wire.Resp _ | Wire.Resp_snap _ ->
            (match next_req () with
             | Some req ->
               tr.Transport.send ~src:me ~dst:Transport.server req
             | None -> ())
          | _ -> ());
      let first = ref [ Wire.Hello { proc } ] in
      for _ = 1 to window do
        match next_req () with
        | Some req -> first := req :: !first
        | None -> ()
      done;
      tr.Transport.send ~src:me ~dst:Transport.server
        (Wire.Batch (List.rev !first)))
    xprocesses;
  let expected =
    List.fold_left
      (fun n { xscript; _ } ->
        List.fold_left (fun n xop -> n + xop_weight xop) n xscript)
      0 xprocesses
  in
  {
    net;
    server;
    replica_nodes;
    init;
    expected;
    metrics;
    durable;
    disks;
    replica_of = (fun r -> incarnations.(r));
    reconfig_ack;
  }

let apply_fate cl = function
  | Harness.Failure.Crash r -> Sim_net.crash cl.net r
  | Harness.Failure.Crash_amnesia r -> Sim_net.crash_amnesia cl.net r
  | Harness.Failure.Restart r -> Sim_net.restart cl.net r
  | Harness.Failure.Partition (a, b) -> Sim_net.partition cl.net a b
  | Harness.Failure.Heal -> Sim_net.heal cl.net

let schedule_fates cl fates =
  List.iter
    (fun (time, f) -> Sim_net.at cl.net time (fun () -> apply_fate cl f))
    fates

let collect cl ~steps =
  let server = cl.server in
  let timed = Server.timed_history server in
  let history = List.map snd timed in
  let keyed = Server.keyed_history server in
  let completed =
    List.length (List.filter (function E.Respond _ -> true | _ -> false) history)
  in
  let key_fastcheck = fastcheck_by_key ~init:cl.init keyed in
  let key_violations =
    List.map
      (fun (k, v) ->
        (k, Fmt.str "%a" (Histories.Fastcheck.pp_violation Fmt.int) v))
      (Server.violations server)
  in
  {
    history;
    timed;
    monitor_violation =
      (match key_violations with [] -> None | (k, v) :: _ ->
        Some (Fmt.str "key %d: %s" k v));
    txn_violations = Server.txn_violations server;
    fastcheck_ok = List.for_all snd key_fastcheck;
    key_fastcheck;
    key_violations;
    completed;
    expected = cl.expected;
    steps;
    virtual_span = Sim_net.now cl.net;
    latencies = latencies_of timed;
    net = Sim_net.stats cl.net;
    quorum = Server.quorum_stats server;
    metrics = cl.metrics;
    epoch = Server.epoch server;
    reconfig_acked = !(cl.reconfig_ack);
  }

let run ?faults ?replicas ?window ?shards ?group_size ?keys ?engine
    ?read_quorum ?durable ?snapshot_every ?gc_bytes ?group_commit
    ?crash_replica ?partition_replicas ?(fates = []) ?(max_steps = 2_000_000)
    ?audit ?xprocesses ?torn_txn ?reconfig ?reconfig_at ?skip_dual_write
    ?metrics ?measure ?trace ~seed ~init ~processes () =
  let cl =
    build ?faults ?replicas ?window ?shards ?group_size ?keys ?engine
      ?read_quorum ?durable ?snapshot_every ?gc_bytes ?group_commit ?audit
      ?xprocesses ?torn_txn ?reconfig ?reconfig_at ?skip_dual_write ?metrics
      ?measure ?trace ~seed ~init ~processes ()
  in
  (* fault schedule: the legacy shorthands desugar to fates *)
  let fates =
    (match crash_replica with
     | Some (r, time) -> [ (time, Harness.Failure.Crash r) ]
     | None -> [])
    @ (match partition_replicas with
       | Some (t0, t1) ->
         [
           (t0, Harness.Failure.Partition (cl.replica_nodes, [ Transport.server ]));
           (t1, Harness.Failure.Heal);
         ]
       | None -> [])
    @ fates
  in
  schedule_fates cl fates;
  let steps = Sim_net.run ~max_steps cl.net in
  collect cl ~steps

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>ops: %d/%d completed in %d steps (virtual span %.1f)@,\
     live audit: %s@,\
     txn audit:  %s@,\
     fastcheck:  %s (%d key%s)@,\
     network: %d delivered, %d dropped, %d duplicated, %d blocked@,\
     engine: %d reads, %d writes, %d msgs, %d retransmissions, %d bytes \
     (%d control)@]"
    o.completed o.expected o.steps o.virtual_span
    (match o.monitor_violation with
     | None -> "no violation"
     | Some v -> "VIOLATION: " ^ v)
    (match o.txn_violations with
     | [] -> "no torn batch"
     | v :: _ -> "TORN: " ^ v)
    (if o.fastcheck_ok then "atomic" else "NOT ATOMIC")
    (List.length o.key_fastcheck)
    (if List.length o.key_fastcheck = 1 then "" else "s")
    o.net.Sim_net.delivered o.net.Sim_net.dropped o.net.Sim_net.duplicated
    o.net.Sim_net.blocked o.quorum.Engine.reads o.quorum.Engine.writes
    o.quorum.Engine.messages_sent o.quorum.Engine.retransmissions
    o.quorum.Engine.bytes_sent o.quorum.Engine.control_bytes_sent
