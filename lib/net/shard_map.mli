(** Static sharding of the register keyspace.

    The service hosts one independent two-writer register per {e key}.
    A [Shard_map] decides, once and deterministically, (a) which {e
    shard} — which {!Quorum} engine of the server's {!Registry} — owns
    a key, and (b) which replicas form that shard's quorum group.
    Placement is a pure function of the key and the map parameters
    (a fixed SplitMix64 hash, no per-process salt), so every node of a
    cluster computes the same answer without coordination.

    A value of this type is immutable after {!create}: all functions
    here are pure, non-blocking and safe to call from any thread. *)

type t

val regs_per_key : int
(** Real registers per key: [2], the paper's Reg{_0}/Reg{_1} pair. *)

val create : ?group_size:int -> shards:int -> unit -> t
(** A map over [shards] shards.  [group_size] (default: every replica)
    bounds each shard's quorum group; groups are overlapping windows
    rotated by shard index, so load spreads when the replica pool is
    larger than one group.
    @raise Invalid_argument if [shards <= 0] or [group_size <= 0]. *)

val shards : t -> int

val shard_of_key : t -> int -> int
(** The shard owning a key, in [[0, shards)].  Static hash placement:
    for a fixed shard count the assignment is consistent across every
    node and every run — resharding (changing [shards]) is a
    whole-cluster reconfiguration, not an online operation. *)

val global_reg : int -> int -> int
(** [global_reg key i] flattens (key, register bit [i]) into the
    global real-register index carried by {!Wire.msg.Query} /
    {!Wire.msg.Store}: [key * regs_per_key + i].
    @raise Invalid_argument if [key < 0] or [i] is not a valid
    register bit. *)

val key_of_reg : int -> int
(** Inverse of {!global_reg} up to the register bit: the key a global
    register index belongs to. *)

val group : t -> replicas:Transport.node list -> int -> Transport.node list
(** The quorum group of a shard, as a sublist of [replicas] (the whole
    pool when [group_size] is unset or not smaller than the pool).
    @raise Invalid_argument if the shard is out of range. *)

val pp : t Fmt.t
