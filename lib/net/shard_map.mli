(** Sharding of the register keyspace, with epoch-stamped placement.

    The service hosts one independent two-writer register per {e key}.
    A [Shard_map] decides, deterministically, (a) which {e shard} —
    which {!Quorum} engine of the server's {!Registry} — owns a key,
    and (b) which replicas form that shard's quorum group.  Placement
    is a pure function of the key and the map parameters (a fixed
    SplitMix64 hash plus an explicit per-key override list), so every
    node of a cluster holding the same map computes the same answer
    without coordination.

    A value of this type is immutable: all functions here are pure,
    non-blocking and safe to call from any thread.  Reconfiguration
    ({!advance}) builds a {e new} map with the next {!epoch}; the
    {!Reconfig} coordinator installs it only after the dual-quorum
    handoff completes, and nodes compare maps by epoch. *)

type t

val regs_per_key : int
(** Real registers per key: [2], the paper's Reg{_0}/Reg{_1} pair. *)

val create : ?group_size:int -> shards:int -> unit -> t
(** A map over [shards] shards at epoch [0] with no overrides.
    [group_size] (default: every replica) bounds each shard's quorum
    group; groups are overlapping windows rotated by shard index, so
    load spreads when the replica pool is larger than one group.
    @raise Invalid_argument if [shards <= 0] or [group_size <= 0]. *)

val shards : t -> int

val epoch : t -> int
(** The configuration epoch: [0] at {!create}, incremented by each
    {!advance}.  Two maps derived from the same [create] by the same
    [advance] sequence are equal; epoch alone orders configurations. *)

val overrides : t -> (int * int) list
(** The explicit (key, shard) placements layered over the hash, newest
    first.  Empty at {!create}. *)

val base_shard_of_key : t -> int -> int
(** The static hash placement of a key, ignoring overrides.  This is
    the placement used for {e worker ownership} in {!Server_pool}: a
    migrated key keeps executing on its original worker domain (which
    owns an instance of every shard engine), so reply routing never
    depends on the mutable override set. *)

val shard_of_key : t -> int -> int
(** The shard owning a key, in [[0, shards)]: the newest override if
    one exists, else {!base_shard_of_key}.  Total and stable within an
    epoch. *)

val advance : t -> key:int -> to_shard:int -> t
(** [advance t ~key ~to_shard] is the next configuration: epoch
    [epoch t + 1] with [key] placed on [to_shard] (an override that
    restores the hash placement is erased rather than recorded).  Pure
    — the argument map is unchanged.
    @raise Invalid_argument if [key < 0] or [to_shard] is out of
    range. *)

val global_reg : int -> int -> int
(** [global_reg key i] flattens (key, register bit [i]) into the
    global real-register index carried by {!Wire.msg.Query} /
    {!Wire.msg.Store}: [key * regs_per_key + i].
    @raise Invalid_argument if [key < 0] or [i] is not a valid
    register bit. *)

val key_of_reg : int -> int
(** Inverse of {!global_reg} up to the register bit: the key a global
    register index belongs to. *)

val group : t -> replicas:Transport.node list -> int -> Transport.node list
(** The quorum group of a shard, as a sublist of [replicas] (the whole
    pool when [group_size] is unset or not smaller than the pool).
    @raise Invalid_argument if the shard is out of range. *)

val pp : t Fmt.t
