(** A bounded ring-buffer event trace for the service.

    Both transports (and the server, for operation invoke/respond
    marks) append events; the buffer keeps the most recent [capacity]
    of them, so tracing a long-lived server costs O(capacity) memory
    and an O(1) mutex-protected write per event.  Timestamps are
    whatever the recording transport's clock says: virtual time under
    {!Sim_net}, wall-clock seconds under {!Socket_net}.

    A trace dumps as JSONL (one JSON object per line) and the
    operation events can be parsed back out of a dump — offline replay
    of a served history through the atomicity checkers
    ([bin/service.exe replay]).  Mind the window: replay needs every
    [invoke]/[respond] of the history, so size [capacity] to the run
    (a ring that wrapped mid-operation yields a history that is not
    input-correct). *)

type kind =
  | Send of { src : int; dst : int; info : string }
  | Deliver of { src : int; dst : int; info : string }
  | Drop of { src : int; dst : int; reason : string }
  | Timer_fire of { node : int }
  | Invoke of { key : int; proc : int; op : int Histories.Event.op }
      (** Operation invocation on the register named [key] (0 for the
          legacy single-register service). *)
  | Respond of { key : int; proc : int; result : int option }
  | Note of string

type event = { time : float; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 4096 events. *)

val record : t -> time:float -> kind -> unit

val recorded : t -> int
(** Total events recorded over the trace's lifetime. *)

val overwritten : t -> int
(** Events lost to ring wrap-around ([recorded - capacity], floored
    at 0) — nonzero means the dump is a suffix window, not the run. *)

val events : t -> event list
(** The retained window, oldest first. *)

val to_jsonl : t -> string
val dump : t -> string -> unit
(** Write the window to a file as JSONL. *)

val history : t -> int Histories.Event.t list
(** The operation events ([Invoke]/[Respond]) of the retained window,
    ready for {!Histories.Operation.of_events}.  Mixes every key —
    meaningful as a register history only for single-key runs; use
    {!keyed_history} otherwise. *)

val keyed_history : t -> (int * int Histories.Event.t) list
(** Same window, each operation event tagged with the register id it
    addressed — group by key before checking atomicity (each key is an
    independent register). *)

val history_of_jsonl : string -> int Histories.Event.t list
val history_of_file : string -> int Histories.Event.t list
(** Parse a dump back into operation events (non-operation lines and
    unparseable lines are skipped). *)

val keyed_history_of_jsonl : string -> (int * int Histories.Event.t) list
val keyed_history_of_file : string -> (int * int Histories.Event.t) list
(** Keyed variants of the parsers; dumps from before the keyspace
    carry no [key] field and parse as key 0. *)
