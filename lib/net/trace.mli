(** A bounded ring-buffer event trace for the service.

    Both transports (and the server, for operation invoke/respond
    marks) append events; the buffer keeps the most recent [capacity]
    of them, so tracing a long-lived server costs O(capacity) memory
    and an O(1) mutex-protected write per event.  Timestamps are
    whatever the recording transport's clock says: virtual time under
    {!Sim_net}, wall-clock seconds under {!Socket_net}.

    A trace dumps as JSONL (one JSON object per line) and the
    operation events can be parsed back out of a dump — offline replay
    of a served history through the atomicity checkers
    ([bin/service.exe replay]).  Mind the window: replay needs every
    [invoke]/[respond] of the history, so size [capacity] to the run
    (a ring that wrapped mid-operation yields a history that is not
    input-correct). *)

type kind =
  | Send of { src : int; dst : int; info : string }
  | Deliver of { src : int; dst : int; info : string }
  | Drop of { src : int; dst : int; reason : string }
  | Timer_fire of { node : int }
  | Invoke of { proc : int; op : int Histories.Event.op }
  | Respond of { proc : int; result : int option }
  | Note of string

type event = { time : float; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 4096 events. *)

val record : t -> time:float -> kind -> unit

val recorded : t -> int
(** Total events recorded over the trace's lifetime. *)

val overwritten : t -> int
(** Events lost to ring wrap-around ([recorded - capacity], floored
    at 0) — nonzero means the dump is a suffix window, not the run. *)

val events : t -> event list
(** The retained window, oldest first. *)

val to_jsonl : t -> string
val dump : t -> string -> unit
(** Write the window to a file as JSONL. *)

val history : t -> int Histories.Event.t list
(** The operation events ([Invoke]/[Respond]) of the retained window,
    ready for {!Histories.Operation.of_events}. *)

val history_of_jsonl : string -> int Histories.Event.t list
val history_of_file : string -> int Histories.Event.t list
(** Parse a dump back into operation events (non-operation lines and
    unparseable lines are skipped). *)
