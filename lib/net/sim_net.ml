type faults = {
  drop : float;
  duplicate : float;
  min_delay : float;
  max_delay : float;
  immune : src:Transport.node -> dst:Transport.node -> bool;
}

let no_immunity ~src:_ ~dst:_ = false

let reliable =
  {
    drop = 0.0;
    duplicate = 0.0;
    min_delay = 1.0;
    max_delay = 1.0;
    immune = no_immunity;
  }

let lossy ?(drop = 0.1) ?(duplicate = 0.05) ?(min_delay = 0.5)
    ?(max_delay = 2.0) () =
  { drop; duplicate; min_delay; max_delay; immune = no_immunity }

type stats = {
  delivered : int;
  dropped : int;
  duplicated : int;
  blocked : int;
  timer_fires : int;
}

type ev =
  | Deliver of { src : int; dst : int; msg : Wire.msg }
  | Timer of { node : int; f : unit -> unit }

type entry = { time : float; seq : int; ev : ev }

(* A plain binary min-heap on (time, seq); seq breaks ties so the order
   of simultaneous events is the order they were scheduled in. *)
module Heap = struct
  type t = { mutable a : entry array; mutable n : int }

  let dummy = { time = 0.0; seq = 0; ev = Timer { node = -1; f = ignore } }
  let create () = { a = Array.make 64 dummy; n = 0 }
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- e;
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.n && lt h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

(* Metric handles interned once at [create]: the same counter names as
   {!Socket_net}, so harness code reads one schema over either
   transport. *)
type ctrs = {
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped : Metrics.counter;
  m_duplicated : Metrics.counter;
  m_blocked : Metrics.counter;
  m_timer_fires : Metrics.counter;
  m_crashes : Metrics.counter;
  m_amnesia : Metrics.counter;
}

type t = {
  rng : Random.State.t;
  faults : faults;
  heap : Heap.t;
  handlers : (int, src:int -> Wire.msg -> unit) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;
  amnesiac : (int, unit) Hashtbl.t;
  recovery : (int, unit -> unit) Hashtbl.t;
  mutable cut : (int list * int list) option;
  mutable clock : float;
  mutable seqno : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable blocked : int;
  mutable timer_fires : int;
  metrics : Metrics.t;
  trace : Trace.t option;
  c : ctrs;
}

let create ~seed ~faults ?metrics ?trace () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let c =
    {
      m_sent = Metrics.counter metrics "frames_sent";
      m_delivered = Metrics.counter metrics "frames_delivered";
      m_dropped = Metrics.counter metrics "frames_dropped";
      m_duplicated = Metrics.counter metrics "frames_duplicated";
      m_blocked = Metrics.counter metrics "frames_blocked";
      m_timer_fires = Metrics.counter metrics "timer_fires";
      m_crashes = Metrics.counter metrics "crashes";
      m_amnesia = Metrics.counter metrics "amnesia_crashes";
    }
  in
  {
    rng = Random.State.make [| seed; 0x6e657421 |];
    faults;
    heap = Heap.create ();
    handlers = Hashtbl.create 16;
    dead = Hashtbl.create 4;
    amnesiac = Hashtbl.create 4;
    recovery = Hashtbl.create 4;
    cut = None;
    clock = 0.0;
    seqno = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    blocked = 0;
    timer_fires = 0;
    metrics;
    trace;
    c;
  }

let metrics t = t.metrics

(* take the event as a thunk: building a trace record often involves
   pretty-printing the payload, which must cost nothing when tracing
   is off *)
let trace_ev t kind =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr ~time:t.clock (kind ())

let now t = t.clock

let schedule t ~delay ev =
  let seq = t.seqno in
  t.seqno <- seq + 1;
  Heap.push t.heap { time = t.clock +. delay; seq; ev }

let severed t src dst =
  match t.cut with
  | None -> false
  | Some (a, b) ->
    (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a)

let delay_of t =
  let f = t.faults in
  f.min_delay +. Random.State.float t.rng (f.max_delay -. f.min_delay +. epsilon_float)

let drop t ~src ~dst reason =
  t.dropped <- t.dropped + 1;
  Metrics.incr t.c.m_dropped;
  trace_ev t (fun () -> Trace.Drop { src; dst; reason })

let send t ~src ~dst msg =
  (* every frame offered to the network counts as sent, duplicates
     included, so that at quiescence
     sent = delivered + dropped + blocked *)
  Metrics.incr t.c.m_sent;
  if Hashtbl.mem t.dead dst then drop t ~src ~dst "dead"
  else if severed t src dst then begin
    t.blocked <- t.blocked + 1;
    Metrics.incr t.c.m_blocked;
    trace_ev t (fun () -> Trace.Drop { src; dst; reason = "partition" })
  end
  else begin
    let f = t.faults in
    let immune = f.immune ~src ~dst in
    if (not immune) && f.drop > 0.0 && Random.State.float t.rng 1.0 < f.drop
    then drop t ~src ~dst "loss"
    else begin
      schedule t ~delay:(delay_of t) (Deliver { src; dst; msg });
      trace_ev t (fun () ->
          Trace.Send { src; dst; info = Fmt.str "%a" Wire.pp msg });
      if
        (not immune) && f.duplicate > 0.0
        && Random.State.float t.rng 1.0 < f.duplicate
      then begin
        t.duplicated <- t.duplicated + 1;
        Metrics.incr t.c.m_duplicated;
        Metrics.incr t.c.m_sent;
        schedule t ~delay:(delay_of t) (Deliver { src; dst; msg })
      end
    end
  end

let set_timer t ~node ~delay f = schedule t ~delay (Timer { node; f })

let transport t =
  {
    Transport.send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    set_timer = (fun ~node ~delay f -> set_timer t ~node ~delay f);
    now = (fun () -> now t);
  }

let register t node handler = Hashtbl.replace t.handlers node handler

let crash t node =
  if not (Hashtbl.mem t.dead node) then Metrics.incr t.c.m_crashes;
  Hashtbl.replace t.dead node ()

let crash_amnesia t node =
  crash t node;
  if not (Hashtbl.mem t.amnesiac node) then Metrics.incr t.c.m_amnesia;
  Hashtbl.replace t.amnesiac node ();
  trace_ev t (fun () -> Trace.Note (Fmt.str "amnesia-crash node=%d" node))

let on_restart t node f = Hashtbl.replace t.recovery node f

let restart t node =
  Hashtbl.remove t.dead node;
  (* an amnesiac node lost its volatile state: its recovery hook must
     rebuild the handler's state (from stable storage, or empty) before
     any further delivery *)
  if Hashtbl.mem t.amnesiac node then begin
    Hashtbl.remove t.amnesiac node;
    match Hashtbl.find_opt t.recovery node with Some f -> f () | None -> ()
  end

let alive t node = not (Hashtbl.mem t.dead node)
let partition t a b = t.cut <- Some (a, b)
let heal t = t.cut <- None

let at t time f =
  schedule t ~delay:(Float.max 0.0 (time -. t.clock)) (Timer { node = -1; f })

let execute t { time; ev; _ } =
  t.clock <- Float.max t.clock time;
  match ev with
  | Deliver { src; dst; msg } ->
    if Hashtbl.mem t.dead dst then drop t ~src ~dst "dead"
    else begin
      match Hashtbl.find_opt t.handlers dst with
      | Some h ->
        t.delivered <- t.delivered + 1;
        Metrics.incr t.c.m_delivered;
        trace_ev t (fun () ->
            Trace.Deliver { src; dst; info = Fmt.str "%a" Wire.pp msg });
        h ~src msg
      | None -> drop t ~src ~dst "no-handler"
    end
  | Timer { node; f } ->
    if node = -1 || not (Hashtbl.mem t.dead node) then begin
      t.timer_fires <- t.timer_fires + 1;
      Metrics.incr t.c.m_timer_fires;
      trace_ev t (fun () -> Trace.Timer_fire { node });
      f ()
    end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some e ->
    execute t e;
    true

(* Controlled stepping: a schedule explorer wants to pick *which*
   pending event fires next rather than always taking the earliest.
   [sorted_entries] snapshots the queue in canonical (time, seq) order
   — the same total order {!step} drains it in — so an index into the
   snapshot names an event deterministically. *)
let sorted_entries t =
  let a = Array.sub t.heap.Heap.a 0 t.heap.Heap.n in
  Array.sort
    (fun x y -> if Heap.lt x y then -1 else if Heap.lt y x then 1 else 0)
    a;
  a

type pending_ev = {
  idx : int;
  seq : int;
  time : float;
  timer : bool;
  src : int;
  dst : int;
  info : string Lazy.t;
}

let pending t =
  sorted_entries t |> Array.to_list
  |> List.mapi (fun i e ->
         match e.ev with
         | Deliver { src; dst; msg } ->
           {
             idx = i;
             seq = e.seq;
             time = e.time;
             timer = false;
             src;
             dst;
             info = lazy (Fmt.str "%a" Wire.pp msg);
           }
         | Timer { node; _ } ->
           {
             idx = i;
             seq = e.seq;
             time = e.time;
             timer = true;
             src = node;
             dst = node;
             info = lazy "timer";
           })

let fire t i =
  let a = sorted_entries t in
  if i < 0 || i >= Array.length a then false
  else begin
    (* Rebuild the heap without the chosen entry, then execute it.
       O(n log n), fine for the small configurations explorers use. *)
    t.heap.Heap.n <- 0;
    Array.iteri (fun j e -> if j <> i then Heap.push t.heap e) a;
    execute t a.(i);
    true
  end

let run ?(max_steps = 1_000_000) t =
  let steps = ref 0 in
  while !steps < max_steps && step t do
    incr steps
  done;
  !steps

let stats t =
  {
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    blocked = t.blocked;
    timer_fires = t.timer_fires;
  }
