(** Cross-key coordinator for atomic multi-key transactions and
    snapshot reads.

    One value of this module is shared by every {!Server} core of a
    service instance (a single server owns one; a {!Server_pool} gives
    all of its worker domains the same one), and serializes multi-key
    operations against each other so that a {!Wire.op.Snap_k} snapshot
    can never observe a torn {!Wire.op.Txn_k} batch — even when the
    touched keys live on different shards served by different worker
    domains.

    {b Protocol.}  A multi-key operation commits in four phases:

    + {e readiness} — the op is queued into the per-(session, key)
      queue of {e every} key it touches; each owning core calls
      {!key_ready} when the op reaches that queue's head.  Readiness
      strictly precedes locking, so a lock holder never waits behind a
      session-queue entry.
    + {e locking} — once every key is ready, the coordinator acquires
      one lock per key in ascending key order as a single chained
      walk.  Totally ordered locks + readiness-first make the schedule
      deadlock-free.
    + {e execution} — all the [exec] thunks run: each owning core
      starts its keys' engine operations in parallel and reports each
      completion with {!key_done}.
    + {e commit} — on the last {!key_done} the snapshot torn-batch
      audit runs, the [respond] thunk answers the client, the locks
      are released (waking FIFO waiters), and the [finish] thunks let
      each core resume its session queues.

    Plain single-key operations never touch the locks; per-key
    atomicity is the engines' business.

    {b Audit.}  When [audit] is on, every transactional write is
    stamped with a fresh per-key version at lock-grant time, and every
    snapshot maps its observed values back to versions (the initial
    value is version 0; values not written by any recorded transaction
    are unattributable and ignored).  A snapshot is {e torn} iff some
    recorded transaction is half visible through it: one shared key
    observed at or above the transaction's version while another
    shared key is below it.  Like [Fastcheck.check_unique], the audit
    assumes workloads give each key distinct write values; reuse can
    mislabel an observation.

    {b Thread safety.}  All entry points are safe to call from any
    domain; internal state is guarded by one mutex, and every supplied
    thunk is invoked outside it (cores should hand in thunks that post
    back onto their own queues). *)

type t
(** A coordinator: lock table, in-flight multi-key operations, and the
    cross-key atomicity audit. *)

type kind =
  | Writes of (int * int) list
      (** An atomic multi-key transaction: [(key, value)] writes. *)
  | Snap of int list
      (** A consistent snapshot read of the listed keys. *)

val create : ?torn:bool -> ?audit:bool -> init:int -> unit -> t
(** [create ~init ()] makes a coordinator for a keyspace whose
    registers start at [init] (used to attribute version 0 to
    unwritten keys in the audit).

    [audit] (default [true]) enables the torn-batch audit; turn it off
    for long benchmark runs to keep the transaction log from growing.

    [torn] (default [false]) is this PR's deliberate-bug hook: it
    makes lock acquisition an immediate no-op grant (the readiness
    barrier still holds), so concurrent multi-key operations race over
    shared keys and {!Explore} can realize — and must catch — a torn
    snapshot. *)

val keys_of_kind : kind -> int list
(** The keys an operation touches, in request order (not deduplicated,
    not sorted). *)

val valid_keys : int list -> bool
(** Structural validity of a multi-key op's key list: non-empty, all
    keys non-negative, pairwise distinct, and at most {!Wire.max_txn}
    long.  Exposed so that every core of a pool — and the client-side
    encoders — apply the identical admission rule. *)

val key_ready :
  t ->
  src:int ->
  seq:int ->
  kind:kind ->
  key:int ->
  exec:(unit -> unit) ->
  finish:(unit -> unit) ->
  ?respond:(int list option -> unit) ->
  unit ->
  unit
(** [key_ready t ~src ~seq ~kind ~key ~exec ~finish ()] reports that
    the operation [(src, seq)] of shape [kind] has reached the head of
    [key]'s session queue on its owning core.  [exec] must start the
    key's engine operation(s) and eventually call {!key_done}; it runs
    exactly once, after all keys are ready and the locks are held.
    [finish] runs at commit, after the client has been answered — the
    core should un-busy the key and pump its queue there.  The owner
    of the {e smallest} key passes [respond], which delivers the reply
    ([Some values] in request order for a snapshot, [None] for a
    transaction ack).  Thunks are called outside the coordinator's
    mutex, possibly from another core's calling context — pass
    post-wrapped thunks. *)

val key_done : t -> src:int -> seq:int -> key:int -> ?value:int -> unit -> unit
(** [key_done t ~src ~seq ~key ()] reports that [key]'s engine
    operation for [(src, seq)] completed; snapshots pass the value
    read as [~value].  The last key to complete commits the operation
    (audit, respond, lock release, finishes). *)

val violations : t -> string list
(** Torn-batch audit verdicts so far, oldest first; empty means every
    committed snapshot was an atomic cut.  Mirrors
    [Server.violations]'s latch-and-report style. *)

type stats = {
  txns_committed : int;  (** Multi-key transactions committed. *)
  snaps_served : int;  (** Snapshot reads answered. *)
  in_flight : int;  (** Multi-key operations currently executing. *)
}
(** Observability counters for the service's stats surface. *)

val stats : t -> stats
(** A consistent snapshot of the counters. *)
