type phase =
  | Collect of {
      reg : int;
      born : float;
      mutable replies : (int * (int * Wire.payload)) list;
      finish : int * Wire.payload -> unit;
    }
  | Store_p of {
      reg : int;
      born : float;
      ts : int;
      pl : Wire.payload;
      mutable acks : int list;
      finish : unit -> unit;
    }

type stats = {
  reads : int;
  writes : int;
  messages_sent : int;
  retransmissions : int;
}

type ctrs = {
  m_queries : Metrics.counter;
  m_stores : Metrics.counter;
  m_retrans : Metrics.counter;
  h_phase1 : Metrics.histogram;
  h_phase2 : Metrics.histogram;
}

type t = {
  tr : Transport.t;
  me : Transport.node;
  replicas : Transport.node list;
  quorum : int;
  read_quorum : int;
  pending : (int, phase) Hashtbl.t;
  wts : (int, int) Hashtbl.t;  (* global reg -> write timestamp *)
  storage : Storage.t option;
  rid_stride : int;
  mutable next_rid : int;
  mutable reads : int;
  mutable writes : int;
  mutable sent : int;
  mutable retrans : int;
  c : ctrs;
}

let create ~transport ~me ~replicas ?read_quorum ?storage ?metrics
    ?(rid_base = 0) ?(rid_stride = 1) () =
  if rid_stride < 1 || rid_base < 0 || rid_base >= rid_stride then
    invalid_arg "Quorum.create: rid_base/rid_stride out of range";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let majority = (List.length replicas / 2) + 1 in
  let read_quorum =
    match read_quorum with
    | None -> majority
    | Some q ->
      if q < 1 || q > List.length replicas then
        invalid_arg "Quorum.create: read_quorum out of range";
      q
  in
  let c =
    {
      m_queries = Metrics.counter metrics "quorum_queries";
      m_stores = Metrics.counter metrics "quorum_stores";
      m_retrans = Metrics.counter metrics "quorum_retransmissions";
      h_phase1 = Metrics.histogram metrics "quorum_phase1";
      h_phase2 = Metrics.histogram metrics "quorum_phase2";
    }
  in
  let wts = Hashtbl.create 16 in
  (* recover issued write timestamps: a restarted engine must never
     reuse a timestamp it already handed to the replicas, or a newer
     value would lose to an older one under the ts-monotone apply *)
  (match storage with
   | None -> ()
   | Some st ->
     List.iter
       (fun (reg, (ts, _)) -> Hashtbl.replace wts reg ts)
       (Storage.contents st));
  {
    tr = transport;
    me;
    replicas;
    quorum = majority;
    read_quorum;
    pending = Hashtbl.create 16;
    wts;
    storage;
    rid_stride;
    next_rid = rid_base;
    reads = 0;
    writes = 0;
    sent = 0;
    retrans = 0;
    c;
  }

let quorum_size t = t.quorum

(* Rids walk the residue class [rid_base mod rid_stride]: during a
   migration two engines of one node carry pending phases for the same
   registers concurrently, and a reply must never be attributable to
   more than one engine's rid space. *)
let fresh_rid t =
  let rid = t.next_rid in
  t.next_rid <- rid + t.rid_stride;
  rid

let send_to t dst msg =
  t.sent <- t.sent + 1;
  t.tr.Transport.send ~src:t.me ~dst msg

let broadcast t msg = List.iter (fun r -> send_to t r msg) t.replicas

let start_store t ~reg ~ts ~pl ~finish =
  let rid = fresh_rid t in
  let born = t.tr.Transport.now () in
  Metrics.incr t.c.m_stores;
  Hashtbl.replace t.pending rid
    (Store_p { reg; born; ts; pl; acks = []; finish });
  broadcast t (Wire.Store { rid; reg; ts; pl })

let read t ~reg ~k =
  t.reads <- t.reads + 1;
  Metrics.incr t.c.m_queries;
  let rid = fresh_rid t in
  let finish (ts, pl) =
    (* write-back phase: install the freshest pair on a majority before
       returning it, for reader-reader atomicity *)
    start_store t ~reg ~ts ~pl ~finish:(fun () -> k pl)
  in
  let born = t.tr.Transport.now () in
  Hashtbl.replace t.pending rid (Collect { reg; born; replies = []; finish });
  broadcast t (Wire.Query { rid; reg })

(* A bare collect: the freshest (ts, payload) a read quorum holds,
   with no write-back phase.  The reconfiguration coordinator uses it
   to sample a register's state from the outgoing group before
   installing it on the incoming one — the install is the write-back,
   so doing another here would double the message cost. *)
let read_ts t ~reg ~k =
  t.reads <- t.reads + 1;
  Metrics.incr t.c.m_queries;
  let rid = fresh_rid t in
  let born = t.tr.Transport.now () in
  Hashtbl.replace t.pending rid (Collect { reg; born; replies = []; finish = k });
  broadcast t (Wire.Query { rid; reg })

(* Install (ts, value) verbatim: the dual-write leg of a migration
   replays the primary engine's timestamp into the incoming group, so
   the pair stays comparable across the handoff.  The local wts floor
   is raised (never lowered) so a post-cutover write through this
   engine still dominates.  No storage append: the primary engine's
   [write] already made the same (reg, ts) durable in this node's log,
   which is what [create] recovers the floor from. *)
let write_at t ~reg ~ts ~value ~k =
  t.writes <- t.writes + 1;
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.wts reg) in
  if ts > cur then Hashtbl.replace t.wts reg ts;
  start_store t ~reg ~ts ~pl:value ~finish:k

let write_ts t ~reg ~value ~k =
  t.writes <- t.writes + 1;
  let ts = 1 + Option.value ~default:0 (Hashtbl.find_opt t.wts reg) in
  Hashtbl.replace t.wts reg ts;
  (* persist the timestamp bump before the Store leaves this node, so
     a restarted engine recovers a wts at least as high as anything a
     replica may already hold from us.  With a group-commit store the
     broadcast is deferred to the batch's durability completion — the
     in-memory wts above is already bumped, so concurrent writes to
     other shards keep their timestamps ordered. *)
  (* the write timestamp dominates every write-back of an earlier read
     (those reuse timestamps <= wts, by SWMR ownership) *)
  (match t.storage with
   | None -> start_store t ~reg ~ts ~pl:value ~finish:k
   | Some st ->
     Storage.append_async st
       { Storage.reg; ts; pl = value }
       ~k:(fun () -> start_store t ~reg ~ts ~pl:value ~finish:k));
  ts

let write t ~reg ~value ~k = ignore (write_ts t ~reg ~value ~k)

let best replies =
  List.fold_left
    (fun acc (_, (ts, pl)) ->
      match acc with
      | Some (ts', _) when ts' >= ts -> acc
      | _ -> Some (ts, pl))
    None replies
  |> Option.get

let on_message t ~src msg =
  let rec go = function
    | Wire.Query_reply { rid; ts; pl; _ } ->
      (match Hashtbl.find_opt t.pending rid with
       | Some (Collect c) when not (List.mem_assoc src c.replies) ->
         c.replies <- (src, (ts, pl)) :: c.replies;
         if List.length c.replies >= t.read_quorum then begin
           Hashtbl.remove t.pending rid;
           Metrics.observe t.c.h_phase1 (t.tr.Transport.now () -. c.born);
           c.finish (best c.replies)
         end
       | _ -> ())
    | Wire.Store_ack { rid; _ } ->
      (match Hashtbl.find_opt t.pending rid with
       | Some (Store_p s) when not (List.mem src s.acks) ->
         s.acks <- src :: s.acks;
         if List.length s.acks >= t.quorum then begin
           Hashtbl.remove t.pending rid;
           Metrics.observe t.c.h_phase2 (t.tr.Transport.now () -. s.born);
           s.finish ()
         end
       | _ -> ())
    | Wire.Batch msgs -> List.iter go msgs
    | _ -> ()
  in
  go msg

let resend_pending ?(older_than = 0.0) t =
  let cutoff = t.tr.Transport.now () -. older_than in
  Hashtbl.iter
    (fun rid phase ->
      let resend answered msg =
        List.iter
          (fun r ->
            if not (List.mem r answered) then begin
              t.retrans <- t.retrans + 1;
              Metrics.incr t.c.m_retrans;
              send_to t r msg
            end)
          t.replicas
      in
      match phase with
      | Collect c when c.born <= cutoff ->
        resend (List.map fst c.replies) (Wire.Query { rid; reg = c.reg })
      | Store_p s when s.born <= cutoff ->
        resend s.acks (Wire.Store { rid; reg = s.reg; ts = s.ts; pl = s.pl })
      | Collect _ | Store_p _ -> ())
    t.pending;
  Hashtbl.length t.pending > 0

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    messages_sent = t.sent;
    retransmissions = t.retrans;
  }
