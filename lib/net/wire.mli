(** The wire protocol of the message-passing register service.

    Two sublanguages share one frame format:

    - {e client <-> server}: [Hello] opens a session, [Req]/[Resp]
      carry register operations with per-session sequence numbers (the
      sequence number lets the server reorder requests that a jittery
      transport delivered out of order, and lets clients pipeline);
    - {e server <-> replica}: the ABD-style quorum messages.  [Query]
      asks a replica for its current (timestamp, tagged value) pair for
      one global real-register index; [Store] installs a pair if its
      timestamp is newer.  Both carry a request id [rid] so replies can
      be matched to the quorum phase that issued them.

    {b Keyed operations.}  The service hosts a whole keyspace of
    independent two-writer registers.  [Read_k]/[Write_k] carry the
    register id ([key]) they address; the legacy [Read]/[Write] are
    synonyms for key 0.  On the replica sublanguage a key is flattened
    into the global register index [reg = key * regs_per_key + i]
    where [i] is the paper's Reg{_0}/Reg{_1} bit (see
    {!Shard_map.global_reg}).

    [Batch] packs several messages into one frame — the hot-path
    batching used by pipelined, coalescing clients ({!Client}) and by
    the sharded server's fan-outs.

    Values on the wire are [int]s (encoded as 64-bit little-endian);
    the payload of a real register is a tagged value, the paper's
    (value, tag bit) pair.

    Everything in this module is pure (no blocking, no I/O) and
    thread-safe by virtue of sharing no mutable state; any thread may
    encode/decode concurrently.  See DESIGN_NET.md for the
    byte-by-byte frame layout. *)

type payload = int Registers.Tagged.t

type op =
  | Read  (** Read register 0 (legacy synonym of [Read_k {key = 0}]). *)
  | Write of int
      (** Write register 0 (legacy synonym of [Write_k {key = 0; _}]). *)
  | Read_k of { key : int }  (** Read the register named [key]. *)
  | Write_k of { key : int; value : int }
      (** Write [value] to the register named [key]. *)
  | Txn_k of { writes : (int * int) list }
      (** Atomic multi-key transaction: write every [(key, value)] pair
          all-or-nothing — no {!Snap_k} snapshot may observe some of the
          writes without the others, even when the keys live on
          different shards (or different worker domains).  At most
          {!max_txn} writes; keys must be distinct; answered by an
          empty [Resp] ack. *)
  | Snap_k of { keys : int list }
      (** Consistent multi-key snapshot read: the returned values form
          an atomic cut of the keyspace — for any committed [Txn_k]
          they contain either all of its writes (per shared key) or
          none.  At most {!max_txn} keys; answered by {!Resp_snap} with
          the values in [keys] order. *)

type msg =
  | Hello of { proc : int }
      (** Open (or reset) a session; [proc] is the processor id the
          client plays in the register history (0 and 1 are the
          writers). *)
  | Req of { seq : int; op : op }
  | Resp of { seq : int; result : int option }
      (** [Some v] answers a read, [None] acknowledges a write. *)
  | Query of { rid : int; reg : int }
  | Query_reply of { rid : int; reg : int; ts : int; pl : payload }
  | Store of { rid : int; reg : int; ts : int; pl : payload }
  | Store_ack of { rid : int; reg : int }
  | Batch of msg list
  | Bye
  | Stats_req of { rid : int }
      (** Ask the server for its live metrics snapshot. *)
  | Stats_reply of { rid : int; stats : (string * int) list }
      (** Counter name/value pairs (see {!Metrics.wire_stats}). *)
  | Store2 of { lid : int; seq : int; reg : int; pl : payload }
      (** Two-bit engine store: no request id, no timestamp — the
          sequence number [seq] of the FIFO link [lid] (the shard
          index) both orders the frame at the replica and matches the
          {!Ack2} back to the issuing operation.  [lid] must be in
          [0, max_lid); [seq] in [0, max_link_seq). *)
  | Ack2 of { lid : int; seq : int }
      (** Acknowledges the [Store2] that carried [seq] on link [lid]. *)
  | Query2 of { lid : int; seq : int; reg : int }
      (** Two-bit engine read probe, link-sequenced like [Store2]. *)
  | Query2_reply of { lid : int; seq : int; pl : payload }
      (** Answers the [Query2] that carried [seq]: just the payload —
          the engine recovers the register from its outbox, and FIFO
          delivery replaces the timestamp comparison. *)
  | Engine_hello of { engine : int }
      (** Engine negotiation, server -> replica, once per connection in
          the socket service: the {!Engine.kind} code the service
          instance speaks (shards of one instance are homogeneous). *)
  | Resp_snap of { seq : int; values : int list }
      (** Answers a [Req] carrying a {!Snap_k}: one value per requested
          key, in request order. *)
  | Reconfig of { rid : int; key : int; to_shard : int; epoch : int }
      (** Ask the server to migrate [key] to shard [to_shard].  [epoch]
          is the configuration epoch the {e requester} believes current:
          a server at a different epoch refuses (stale-epoch fencing)
          and answers with its own, letting the client retry against the
          real configuration.  All three fields are non-negative by
          construction; the codec rejects negatives at both ends. *)
  | Reconfig_ack of { rid : int; epoch : int; ok : bool }
      (** Answers [Reconfig]: [ok = true] carries the {e new} epoch the
          migration installed; [ok = false] carries the server's current
          epoch (stale requester, busy migration, or reconfiguration
          disabled on this deployment). *)
  | Epoch_req of { rid : int }
      (** Ask the server for its current configuration epoch. *)
  | Epoch_reply of { rid : int; epoch : int; shards : int }
      (** Answers [Epoch_req] with the server's epoch and shard count. *)

val max_frame : int
(** Upper bound on an encoded message body (16 MiB), enforced
    symmetrically: {!frame} refuses to emit a larger body and the
    stream receivers refuse to read one. *)

val max_batch_depth : int
(** Decoder bound on [Batch] nesting; deeper frames are an [Error]
    (the encoder is not bounded — bound your producers). *)

val max_batch : int
(** Decoder bound on [Batch] length; together with {!frame} keeping
    bodies under {!max_frame}, a frame can never make the decoder
    allocate unboundedly. *)

val max_stat_name : int
(** Decoder bound on a [Stats_reply] counter-name length; longer
    strings are an [Error]. *)

val max_stats : int
(** Decoder bound on the number of [Stats_reply] entries. *)

val max_lid : int
(** Exclusive upper bound on a two-bit link id (one byte: 256), i.e.
    on the shard count a twobit service instance can address. *)

val max_link_seq : int
(** Exclusive upper bound on a two-bit link sequence number (32-bit
    field: 2{^32}). *)

val max_txn : int
(** Inclusive upper bound on the keys of one multi-key operation
    ([Txn_k] writes, [Snap_k] keys, [Resp_snap] values); enforced by
    both encoder and decoder. *)

val encode : msg -> string
(** Serialize a message body (no frame header).  Never blocks; cost is
    linear in the message size.  The encoder does {e not} enforce
    {!max_frame} or {!max_batch_depth} — those bite at {!frame} time
    and in the receiver.
    @raise Invalid_argument if a two-bit link header field ([lid],
    [seq]) or engine code is outside its compact encoding range, or a
    multi-key op exceeds {!max_txn} keys — emitting bytes every
    receiver rejects would break the round-trip law. *)

val encoded_size : msg -> int
(** [String.length (encode m)], computed without allocating — for the
    per-send byte accounting in the engines.  Total (field widths are
    fixed, so it never needs to inspect values). *)

val control_bytes : msg -> int
(** The control-metadata share of {!encoded_size}: everything that is
    not register index or register payload (tags, request ids,
    timestamps, link headers, batch overhead).  The quantity the
    two-bit engine minimises — see DESIGN_NET.md §10. *)

val decode : string -> (msg, string) result
(** Total inverse of {!encode} for messages within the decoder bounds
    ([decode (encode m) = Ok m]); any truncated, trailing-garbage,
    unknown-tag, over-long or over-deep input is an [Error] — never an
    exception.  Pure and non-blocking; safe to call from any thread. *)

val decode_exn : string -> msg
(** Like {!decode} but raising.
    @raise Invalid_argument on undecodable input. *)

val frame : src:int -> msg -> bytes
(** A stream frame: an 8-byte header ([length, src] as two 32-bit
    little-endian ints) followed by the encoded message.  Pure and
    non-blocking.
    @raise Invalid_argument if the body exceeds {!max_frame} (a body
    length must never overflow the 32-bit header field, and a frame
    the receiver would reject should fail at the sender). *)

val header_size : int
(** Bytes of the frame header ([8]). *)

val parse_header : bytes -> int * int
(** [(body_length, src)] of a frame header.  The caller must supply at
    least {!header_size} bytes; the returned length is {e untrusted}
    input and must be checked against {!max_frame} before allocating. *)

val pp : msg Fmt.t
(** Human-readable one-line rendering (used by the tracing layer). *)
