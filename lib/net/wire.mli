(** The wire protocol of the message-passing register service.

    Two sublanguages share one frame format:

    - {e client <-> server}: [Hello] opens a session, [Req]/[Resp]
      carry register operations with per-session sequence numbers (the
      sequence number lets the server reorder requests that a jittery
      transport delivered out of order, and lets clients pipeline);
    - {e server <-> replica}: the ABD-style quorum messages.  [Query]
      asks a replica for its current (timestamp, tagged value) pair for
      one of the two real registers; [Store] installs a pair if its
      timestamp is newer.  Both carry a request id [rid] so replies can
      be matched to the quorum phase that issued them.

    [Batch] packs several messages into one frame — the hot-path
    batching used by pipelined clients.

    Values on the wire are [int]s (encoded as 64-bit little-endian);
    the payload of a real register is a tagged value, the paper's
    (value, tag bit) pair. *)

type payload = int Registers.Tagged.t

type op =
  | Read
  | Write of int

type msg =
  | Hello of { proc : int }
      (** Open (or reset) a session; [proc] is the processor id the
          client plays in the register history (0 and 1 are the
          writers). *)
  | Req of { seq : int; op : op }
  | Resp of { seq : int; result : int option }
      (** [Some v] answers a read, [None] acknowledges a write. *)
  | Query of { rid : int; reg : int }
  | Query_reply of { rid : int; reg : int; ts : int; pl : payload }
  | Store of { rid : int; reg : int; ts : int; pl : payload }
  | Store_ack of { rid : int; reg : int }
  | Batch of msg list
  | Bye
  | Stats_req of { rid : int }
      (** Ask the server for its live metrics snapshot. *)
  | Stats_reply of { rid : int; stats : (string * int) list }
      (** Counter name/value pairs (see {!Metrics.wire_stats}). *)

val max_frame : int
(** Upper bound on an encoded message body (16 MiB), enforced
    symmetrically: {!frame} refuses to emit a larger body and the
    stream receivers refuse to read one. *)

val max_batch_depth : int
(** Decoder bound on [Batch] nesting; deeper frames are an [Error]
    (the encoder is not bounded — bound your producers). *)

val max_batch : int
(** Decoder bound on [Batch] length and {!frame} keeps bodies under
    {!max_frame}, so a frame can never make the decoder allocate
    unboundedly. *)

val encode : msg -> string
val decode : string -> (msg, string) result
(** Total inverse of {!encode} for messages within the decoder bounds
    ([decode (encode m) = Ok m]); any truncated, trailing-garbage,
    unknown-tag, over-long or over-deep input is an [Error] — never an
    exception. *)

val decode_exn : string -> msg
(** @raise Invalid_argument on undecodable input. *)

val frame : src:int -> msg -> bytes
(** A stream frame: an 8-byte header ([length, src] as two 32-bit
    little-endian ints) followed by the encoded message.
    @raise Invalid_argument if the body exceeds {!max_frame} (a body
    length must never overflow the 32-bit header field, and a frame
    the receiver would reject should fail at the sender). *)

val header_size : int
val parse_header : bytes -> int * int
(** [(body_length, src)] of a frame header. *)

val pp : msg Fmt.t
