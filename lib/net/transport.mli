(** The capability a protocol state machine needs from a network.

    The service's replicas, quorum engine, server and clients are
    written against this record only, so the same code runs over the
    deterministic fault-injecting simulator ({!Sim_net}) and over real
    Unix-domain sockets ({!Socket_net}).  Handlers (how a node {e
    receives}) are registered with the concrete implementation; the
    record carries only the send side, timers and a clock.

    [send] never blocks and may silently drop (lossy links, dead
    peers): every protocol built on it must tolerate loss, which the
    quorum engine does by retransmitting on a timer. *)

type node = int
(** Flat node-id space shared by both transports.  By convention in
    this library: replicas are [0 .. n-1], the server is {!server}, and
    the client playing processor [p] is [client p]. *)

val server : node
val client : int -> node

type t = {
  send : src:node -> dst:node -> Wire.msg -> unit;
  set_timer : node:node -> delay:float -> (unit -> unit) -> unit;
      (** One-shot timer; the callback runs serialized with [node]'s
          message handler (simulated time for {!Sim_net}, wall-clock
          seconds for {!Socket_net}). *)
  now : unit -> float;
}

val null : t
(** Discards sends, never fires timers; for unit-testing state
    machines in isolation. *)
