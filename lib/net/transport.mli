(** The capability a protocol state machine needs from a network.

    The service's replicas, quorum engines, server and clients are
    written against this record only, so the same code runs over the
    deterministic fault-injecting simulator ({!Sim_net}) and over real
    Unix-domain sockets ({!Socket_net}).  Handlers (how a node {e
    receives}) are registered with the concrete implementation; the
    record carries only the send side, timers and a clock.

    [send] never blocks and may silently drop (lossy links, dead
    peers): every protocol built on it must tolerate loss, which the
    quorum engine does by retransmitting on a timer. *)

type node = int
(** Flat node-id space shared by both transports.  By convention in
    this library: replicas are [0 .. n-1], the server is {!server}, and
    the client playing processor [p] is [client p]. *)

val server : node
(** The front-end server's node id (100).  Constant; pure. *)

val client : int -> node
(** [client p] is the node id of the client playing processor [p]
    (200 + [p]).  Pure; does not validate [p] — negative processors
    produce ids colliding with replicas or the server, so don't. *)

type t = {
  send : src:node -> dst:node -> Wire.msg -> unit;
      (** Fire-and-forget unicast.  Never blocks and never raises:
          unroutable destinations, crashed peers, full buffers and
          lossy links all surface as silent loss (possibly counted in
          the transport's metrics), which the protocols above absorb by
          retransmission.  Thread-safety is the implementation's
          burden: both {!Sim_net} (single-threaded event loop) and
          {!Socket_net} (internally locked) allow concurrent calls. *)
  set_timer : node:node -> delay:float -> (unit -> unit) -> unit;
      (** One-shot timer; the callback runs serialized with [node]'s
          message handler (virtual time under {!Sim_net}, wall-clock
          seconds under {!Socket_net}), so handler state needs no extra
          locking.  If [node] is gone — or is no longer the {e same
          incarnation} it was when the timer was armed (crashed,
          unlistened, or replaced by a reconnect/restart in between) —
          by the time the timer fires, the callback is dropped, not
          run.  Both transports enforce this the same way: {!Sim_run}
          guards replica callbacks with a physical-equality check on
          the incarnation cell, {!Socket_net} with the
          endpoint-incarnation check of its timer guard (dropped
          firings count [timers_dropped]).  Does not block. *)
  now : unit -> float;
      (** The transport's clock: virtual time under {!Sim_net},
          [Unix.gettimeofday] under {!Socket_net}.  Monotone within a
          simulation; wall-clock caveats apply on real systems.  Cheap
          and safe from any thread. *)
}

val null : t
(** Discards sends, never fires timers, clock pinned at 0; for
    unit-testing state machines in isolation. *)
