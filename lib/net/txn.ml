(* Cross-key (and, under a Server_pool, cross-domain) coordination for
   atomic multi-key transactions and snapshot reads.

   One value of this module is shared by every Server core of a service
   instance.  A multi-key operation executes in four phases:

   1. {e readiness} — the op occupies the session queue of every key it
      touches; each owning core reports a key when the op reaches that
      queue's head.  Only when every key is ready does the op proceed,
      so a lock holder can never be waiting behind another session-queue
      entry (that would close a waits-for cycle through the queues).
   2. {e locking} — the op acquires one global lock per key, in
      ascending key order, as a single chained walk.  Total order on
      locks + full readiness first = no deadlock: a blocked op only
      ever waits for a strictly smaller-keyed lock to be released by an
      op that is already executing.
   3. {e execution} — every owning core starts its keys' engine
      operations in parallel (each on its own registry, so quorum
      replies keep point-routing to the right domain).
   4. {e commit} — when the last engine op completes, the coordinator
      (the owner of the smallest key) answers the client, the locks are
      released (waking waiters through their cores' [post]), and each
      core releases its session queues.

   Plain single-key ops never touch the locks: per-key atomicity is the
   engines' job, and the torn-batch audit ignores values it cannot
   attribute to a transaction.  The locks only serialize multi-key ops
   against each other on overlapping key sets — which is exactly the
   property the audit checks.

   The audit versions every transactional write per key (under the same
   mutex that guards the locks, at lock-grant time, so a blocked
   transaction cannot leak versions into a snapshot that is still
   running).  A snapshot maps each observed value back to a version —
   the initial value is version 0, values written by no recorded
   transaction are unattributable and ignored — and is torn iff some
   recorded transaction is both visible (one shared key at or above its
   version) and invisible (another shared key below it).  Like
   [Fastcheck.check_unique], the audit assumes per-key unique write
   values; reusing a value across writes to one key can mislabel an
   observation.

   [torn] is the deliberate-bug hook of this PR: it turns lock
   acquisition into an immediate grant (readiness still holds), so the
   parallel phase-3 engine ops race snapshots — the explorer must catch
   the resulting torn observation, and must exhaust clean without the
   hook. *)

type kind = Writes of (int * int) list | Snap of int list

type lock = {
  mutable held : bool;
  waiters : (unit -> unit) Queue.t;  (* granted FIFO on release *)
}

type mop = {
  kind : kind;
  keys : int array;  (* ascending, distinct *)
  mutable ready : int;  (* keys reported at their session-queue head *)
  mutable completed : int;  (* per-key engine ops finished *)
  mutable locked : bool;
  mutable execs : (unit -> unit) list;
  mutable finishes : (unit -> unit) list;
  mutable respond : (int list option -> unit) option;
  values : (int, int) Hashtbl.t;  (* snapshot key -> value read *)
}

type t = {
  mu : Mutex.t;
  torn : bool;
  audit : bool;
  init : int;
  locks : (int, lock) Hashtbl.t;
  ops : (int * int, mop) Hashtbl.t;  (* (client node, seq) -> in flight *)
  ver : (int, int) Hashtbl.t;  (* key -> last version stamped *)
  value_ver : (int * int, int) Hashtbl.t;  (* (key, value) -> version *)
  mutable txns_rev : (int * int) list list;  (* recorded txn stamps *)
  mutable violations_rev : string list;
  mutable txns_committed : int;
  mutable snaps_served : int;
}

let create ?(torn = false) ?(audit = true) ~init () =
  {
    mu = Mutex.create ();
    torn;
    audit;
    init;
    locks = Hashtbl.create 16;
    ops = Hashtbl.create 16;
    ver = Hashtbl.create 16;
    value_ver = Hashtbl.create 64;
    txns_rev = [];
    violations_rev = [];
    txns_committed = 0;
    snaps_served = 0;
  }

let keys_of_kind = function
  | Writes ws -> List.map fst ws
  | Snap keys -> keys

(* Structural validity, shared with the servers so every core of a pool
   rejects (or admits) a multi-key op identically: at least one key,
   all non-negative, no duplicates, within the wire cap. *)
let valid_keys keys =
  let rec distinct = function
    | a :: (b :: _ as rest) -> a < b && distinct rest
    | _ -> true
  in
  keys <> []
  && List.length keys <= Wire.max_txn
  && List.for_all (fun k -> k >= 0) keys
  && distinct (List.sort compare keys)

let lock_of t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
    let l = { held = false; waiters = Queue.create () } in
    Hashtbl.replace t.locks key l;
    l

(* Version stamping at lock grant (audit only): the writes become
   attributable exactly when no snapshot can be mid-flight over them. *)
let stamp_locked t op =
  match op.kind with
  | Snap _ -> ()
  | Writes ws ->
    let vers =
      List.map
        (fun (k, v) ->
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.ver k) in
          Hashtbl.replace t.ver k n;
          Hashtbl.replace t.value_ver (k, v) n;
          (k, n))
        ws
    in
    t.txns_rev <- vers :: t.txns_rev

(* Phase 2/3: walk the locks in ascending order; parked continuations
   resume the walk from where they stopped.  All engine-op starts run
   outside the mutex (they post into the owning cores). *)
let rec acquire_from t op i =
  if t.torn then granted t op
  else begin
    Mutex.lock t.mu;
    let n = Array.length op.keys in
    let rec go i =
      if i = n then true
      else begin
        let l = lock_of t op.keys.(i) in
        if not l.held then begin
          l.held <- true;
          go (i + 1)
        end
        else begin
          Queue.add (fun () -> acquire_from t op (i + 1)) l.waiters;
          false
        end
      end
    in
    let all = go i in
    Mutex.unlock t.mu;
    if all then granted t op
  end

and granted t op =
  Mutex.lock t.mu;
  op.locked <- true;
  if t.audit then stamp_locked t op;
  let execs = op.execs in
  Mutex.unlock t.mu;
  List.iter (fun f -> f ()) execs

let key_ready t ~src ~seq ~kind ~key ~exec ~finish ?respond () =
  Mutex.lock t.mu;
  let op =
    match Hashtbl.find_opt t.ops (src, seq) with
    | Some op -> op
    | None ->
      let keys =
        Array.of_list (List.sort_uniq compare (keys_of_kind kind))
      in
      let op =
        {
          kind;
          keys;
          ready = 0;
          completed = 0;
          locked = false;
          execs = [];
          finishes = [];
          respond = None;
          values = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.ops (src, seq) op;
      op
  in
  op.execs <- exec :: op.execs;
  op.finishes <- finish :: op.finishes;
  (match respond with Some r -> op.respond <- Some r | None -> ());
  op.ready <- op.ready + 1;
  ignore key;
  let all_ready = op.ready = Array.length op.keys in
  Mutex.unlock t.mu;
  if all_ready then acquire_from t op 0

(* The torn-batch check, run at snapshot commit while the snapshot
   still holds its locks: map every observed value to a version and
   look for a recorded transaction that is half visible. *)
let check_torn_locked t op =
  let obs k =
    match Hashtbl.find_opt op.values k with
    | None -> None
    | Some v -> (
      match Hashtbl.find_opt t.value_ver (k, v) with
      | Some n -> Some n
      | None -> if v = t.init then Some 0 else None)
  in
  let torn_against vers =
    let shared =
      List.filter_map
        (fun (k, vt) ->
          if Array.exists (fun k' -> k' = k) op.keys then
            match obs k with Some o -> Some (k, vt, o) | None -> None
          else None)
        vers
    in
    match
      ( List.find_opt (fun (_, vt, o) -> o >= vt) shared,
        List.find_opt (fun (_, vt, o) -> o < vt) shared )
    with
    | Some (k1, vt1, o1), Some (k2, vt2, o2) ->
      Some
        (Fmt.str
           "torn batch: snapshot saw key %d at version %d (>= the txn's %d) \
            but key %d at version %d (< the txn's %d)"
           k1 o1 vt1 k2 o2 vt2)
    | _ -> None
  in
  match List.find_map torn_against (List.rev t.txns_rev) with
  | Some msg -> t.violations_rev <- msg :: t.violations_rev
  | None -> ()

let key_done t ~src ~seq ~key ?value () =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.ops (src, seq) with
  | None -> Mutex.unlock t.mu
  | Some op ->
    (match value with
     | Some v -> Hashtbl.replace op.values key v
     | None -> ());
    op.completed <- op.completed + 1;
    if op.completed < Array.length op.keys then Mutex.unlock t.mu
    else begin
      (* phase 4: commit.  Audit under the mutex (the locks are still
         ours), then answer, then release — every action that can run
         foreign code happens after unlock. *)
      Hashtbl.remove t.ops (src, seq);
      (if t.audit then
         match op.kind with
         | Snap _ -> check_torn_locked t op
         | Writes _ -> ());
      (match op.kind with
       | Writes _ -> t.txns_committed <- t.txns_committed + 1
       | Snap _ -> t.snaps_served <- t.snaps_served + 1);
      let values =
        match op.kind with
        | Writes _ -> None
        | Snap keys ->
          Some
            (List.map
               (fun k ->
                 Option.value ~default:t.init (Hashtbl.find_opt op.values k))
               keys)
      in
      let respond = op.respond in
      let finishes = op.finishes in
      let wakes =
        if not op.locked || t.torn then []
        else
          Array.fold_left
            (fun acc k ->
              let l = Hashtbl.find t.locks k in
              match Queue.take_opt l.waiters with
              | Some w -> w :: acc  (* ownership transfers to the waiter *)
              | None ->
                l.held <- false;
                acc)
            [] op.keys
      in
      Mutex.unlock t.mu;
      (match respond with Some r -> r values | None -> ());
      List.iter (fun f -> f ()) finishes;
      List.iter (fun w -> w ()) wakes
    end

let violations t =
  Mutex.lock t.mu;
  let v = List.rev t.violations_rev in
  Mutex.unlock t.mu;
  v

type stats = { txns_committed : int; snaps_served : int; in_flight : int }

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      txns_committed = t.txns_committed;
      snaps_served = t.snaps_served;
      in_flight = Hashtbl.length t.ops;
    }
  in
  Mutex.unlock t.mu;
  s
