(** A crash-prone replica holding one timestamped copy of each of the
    paper's two real registers.

    Replicas are the passive half of the ABD-style construction
    (Attiya–Bar-Noy–Dolev; see also Mostéfaoui–Raynal in PAPERS.md):
    they answer [Query] with their current (timestamp, tagged value)
    pair and apply [Store] iff its timestamp is newer than what they
    hold.  Both handlers are idempotent and monotone, so the quorum
    engine may retransmit freely and the network may duplicate or
    reorder messages without affecting safety.

    The state machine is pure message-in/messages-out — it runs
    unchanged under {!Sim_net} and {!Socket_net}. *)

type t

val create : ?nregs:int -> init:int -> unit -> t
(** [nregs] defaults to 2 (the paper's Reg0/Reg1), each initialised to
    the tagged value [(init, 0)] at timestamp 0. *)

val handle :
  t -> src:Transport.node -> Wire.msg -> (Transport.node * Wire.msg) list
(** Process one message, returning the replies to send.  Unknown
    message kinds are ignored; [Batch] is flattened. *)

val contents : t -> (int * Wire.payload) array
(** Current (timestamp, payload) per register — for tests. *)

val handled : t -> int
(** Number of messages processed. *)
