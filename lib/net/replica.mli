(** A crash-prone replica holding one timestamped copy of every real
    register of the keyspace.

    Replicas are the passive half of the ABD-style construction
    (Attiya–Bar-Noy–Dolev; see also Mostéfaoui–Raynal in PAPERS.md):
    they answer [Query] with their current (timestamp, tagged value)
    pair and apply [Store] iff its timestamp is newer than what they
    hold.  Both handlers are idempotent and monotone, so the quorum
    engine may retransmit freely and the network may duplicate or
    reorder messages without affecting safety.

    Registers are addressed by the flat global index of
    {!Shard_map.global_reg} — key [k]'s Reg{_0}/Reg{_1} live at
    [2k]/[2k+1] — and are materialized lazily: an index never stored
    reads back as [(0, initial)], so the replica's footprint is
    proportional to the keys actually written, not to the keyspace.

    {b Two-bit sublanguage.}  The same replica also speaks the
    Mostéfaoui–Raynal engine's messages ([Store2]/[Query2], see
    {!Engine_twobit}): each [(engine, lid)] pair is a FIFO link whose
    frames are delivered in link-sequence order — early frames are
    parked, duplicates of already-delivered frames are re-answered
    from current state — and an applied [Store2] bumps the register's
    timestamp by one (the apply counter {e is} the timestamp).  Link
    receive state is volatile even for a durable replica: the twobit
    fault model is crash-stop, not amnesia (see DESIGN_NET.md §10).

    The state machine is pure message-in/messages-out — it runs
    unchanged under {!Sim_net} and {!Socket_net}.  A [t] is not
    internally locked: drive it from one thread (or one transport
    handler, which both transports serialize per node). *)

type t

val create : init:int -> ?storage:Storage.t -> ?unordered:bool -> unit -> t
(** Every register of the keyspace starts as the tagged value
    [(init, false)] at timestamp 0.  With [storage] the replica is
    durable: each accepted [Store] is appended to the store's WAL
    {e before} the ack is built (persist-before-ack), and the table
    recovered by {!Storage.create} — snapshot plus replayed WAL — is
    the replica's starting state.  Without it the table is volatile
    and an amnesia restart comes back empty.

    [unordered] (default false) is the twobit engine's deliberate-bug
    hook, the counterpart of ABD's [?read_quorum]: link frames are
    applied in arrival order instead of link-sequence order, so a
    delayed retransmitted [Store2] can regress a register — the
    new/old inversion {!Explore} demonstrates. *)

val handle_emit :
  t ->
  src:Transport.node ->
  emit:(Transport.node * Wire.msg -> unit) ->
  Wire.msg ->
  unit
(** Process one message, passing each reply to [emit].  Unknown message
    kinds (and negative register indices) are ignored; [Batch] is
    flattened.  This is the group-commit-aware entry point: a
    [Store]/[Store2] ack is emitted from the backing store's
    durability completion, which with a group-commit store may happen
    {e after} this call returns — on a later [Storage.flush] or on the
    batch-filling append of another message.  The driver must therefore
    use an [emit] that stays valid across handler turns (and guard it
    against the replica having crashed or restarted in between). *)

val handle :
  t -> src:Transport.node -> Wire.msg -> (Transport.node * Wire.msg) list
(** {!handle_emit} collecting the replies into a list.  Complete only
    when the replica is volatile or its store commits synchronously
    (no [group_commit] config): a deferred ack would be lost with the
    collector.  Kept for the sync-store drivers and tests. *)

val contents : t -> (int * (int * Wire.payload)) list
(** Materialized registers as [(global_reg, (timestamp, payload))],
    sorted by register index — for tests. *)

val lookup_reg : t -> int -> int * Wire.payload
(** Current (timestamp, payload) of one global register index,
    materialized or not. *)

val storage : t -> Storage.t option
(** The backing store, when the replica is durable. *)

val handled : t -> int
(** Number of messages processed. *)

val engine : t -> int option
(** The {!Engine.kind_code} announced by the last [Engine_hello], if
    any — the socket service's engine negotiation. *)
