(* A select-backed readiness loop with an epoll-shaped interface.
   See the .mli for the contract; the invariants that matter here:

   - every callback runs on the loop thread (the thread inside [run]);
   - the tables are guarded by [mu] because registration may come from
     any thread, but callbacks are looked up fresh under [mu] right
     before each dispatch, so a callback removed (or replaced) by an
     earlier callback of the same iteration never fires stale;
   - the wakeup pipe makes every cross-thread mutation visible to a
     sleeping select without waiting out its timeout. *)

type fd_interest = {
  mutable on_read : (unit -> unit) option;
  mutable on_write : (unit -> unit) option;
}

(* Binary min-heap of timers keyed by (deadline, seq); [seq] breaks
   ties so equal deadlines fire in arming order. *)
module Theap = struct
  type entry = { deadline : float; seq : int; f : unit -> unit }

  type t = { mutable a : entry array; mutable n : int }

  let dummy = { deadline = 0.0; seq = 0; f = ignore }
  let create () = { a = Array.make 16 dummy; n = 0 }
  let size h = h.n

  let lt x y =
    x.deadline < y.deadline || (x.deadline = y.deadline && x.seq < y.seq)

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let push h e =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!m) then m := l;
        if r < h.n && lt h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          swap h !i !m;
          i := !m
        end
      done;
      Some top
    end
end

type t = {
  mu : Mutex.t;
  fds : (Unix.file_descr, fd_interest) Hashtbl.t;
  timers : Theap.t;
  posts : (unit -> unit) Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable wake_armed : bool;  (* a wake byte is already in the pipe *)
  stopped : bool Atomic.t;
  mutable loop_tid : int;  (* Thread.id of the thread inside [run], or -1 *)
  mutable tseq : int;
  on_error : exn -> unit;
}

(* Cap on one sleep so a lost wakeup can only ever delay, not hang. *)
let max_sleep = 0.1

let create ?(on_error = fun _ -> ()) () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    mu = Mutex.create ();
    fds = Hashtbl.create 16;
    timers = Theap.create ();
    posts = Queue.create ();
    wake_r;
    wake_w;
    wake_armed = false;
    stopped = Atomic.make false;
    loop_tid = -1;
    tseq = 0;
    on_error;
  }

let in_loop t = t.loop_tid = Thread.id (Thread.self ())

(* One byte in the pipe is enough to interrupt any number of pending
   selects; [wake_armed] keeps redundant writers off the syscall. *)
let wake t =
  (* from the loop thread itself no wake is needed: the next iteration
     recomputes the interest set, timers and post queue before
     sleeping *)
  if not (in_loop t) then begin
    let arm =
      Mutex.protect t.mu (fun () ->
          if t.wake_armed then false
          else begin
            t.wake_armed <- true;
            true
          end)
    in
    if arm then
      try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
      -> ()
  end

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Mutex.protect t.mu (fun () -> t.wake_armed <- false)

let post t f =
  Mutex.protect t.mu (fun () -> Queue.add f t.posts);
  wake t

let stop t =
  Atomic.set t.stopped true;
  wake t

let interest_of t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some i -> i
  | None ->
    let i = { on_read = None; on_write = None } in
    Hashtbl.replace t.fds fd i;
    i

let add_read t fd cb =
  Mutex.protect t.mu (fun () -> (interest_of t fd).on_read <- Some cb);
  wake t

let set_write t fd cb =
  Mutex.protect t.mu (fun () ->
      match (cb, Hashtbl.find_opt t.fds fd) with
      | None, None -> ()  (* disarming an unknown fd: no-op *)
      | _ -> (interest_of t fd).on_write <- cb);
  wake t

let remove_fd t fd =
  Mutex.protect t.mu (fun () -> Hashtbl.remove t.fds fd);
  wake t

let after t delay f =
  if delay < 0.0 then invalid_arg "Event_loop.after: negative delay";
  let deadline = Unix.gettimeofday () +. delay in
  Mutex.protect t.mu (fun () ->
      let seq = t.tseq in
      t.tseq <- seq + 1;
      Theap.push t.timers { deadline; seq; f });
  wake t

let fds t = Mutex.protect t.mu (fun () -> Hashtbl.length t.fds)
let pending_timers t = Mutex.protect t.mu (fun () -> Theap.size t.timers)

let guard t f = try f () with e -> t.on_error e

(* A closed-but-still-registered fd (a layering bug upstream) makes
   select raise EBADF; pruning the dead entries beats spinning. *)
let prune_bad t =
  let bad =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold
          (fun fd _ acc ->
            match Unix.fstat fd with
            | _ -> acc
            | exception Unix.Unix_error _ -> fd :: acc)
          t.fds [])
  in
  List.iter (fun fd -> remove_fd t fd) bad

let run t =
  t.loop_tid <- Thread.id (Thread.self ());
  while not (Atomic.get t.stopped) do
    (* 1. posted closures *)
    let jobs =
      Mutex.protect t.mu (fun () ->
          let js = Queue.fold (fun acc j -> j :: acc) [] t.posts in
          Queue.clear t.posts;
          List.rev js)
    in
    List.iter (guard t) jobs;
    (* 2. due timers *)
    let now = Unix.gettimeofday () in
    let rec fire_due () =
      let due =
        Mutex.protect t.mu (fun () ->
            match Theap.peek t.timers with
            | Some e when e.Theap.deadline <= now -> Theap.pop t.timers
            | _ -> None)
      in
      match due with
      | Some e ->
        guard t e.Theap.f;
        fire_due ()
      | None -> ()
    in
    fire_due ();
    if not (Atomic.get t.stopped) then begin
      (* 3. select on the current interest set *)
      let reads, writes, timeout =
        Mutex.protect t.mu (fun () ->
            let r = ref [ t.wake_r ] and w = ref [] in
            Hashtbl.iter
              (fun fd i ->
                if i.on_read <> None then r := fd :: !r;
                if i.on_write <> None then w := fd :: !w)
              t.fds;
            let timeout =
              if not (Queue.is_empty t.posts) then 0.0
              else
                match Theap.peek t.timers with
                | None -> max_sleep
                | Some e ->
                  Float.max 0.0
                    (Float.min max_sleep (e.Theap.deadline -. now))
            in
            (!r, !w, timeout))
      in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> prune_bad t
      | ready_r, ready_w, _ ->
        List.iter
          (fun fd ->
            if fd = t.wake_r then drain_wake t
            else
              (* re-fetch under the lock: an earlier callback of this
                 batch may have removed or replaced this fd's interest *)
              match
                Mutex.protect t.mu (fun () ->
                    Option.bind (Hashtbl.find_opt t.fds fd) (fun i ->
                        i.on_read))
              with
              | Some cb -> guard t cb
              | None -> ())
          ready_r;
        List.iter
          (fun fd ->
            match
              Mutex.protect t.mu (fun () ->
                  Option.bind (Hashtbl.find_opt t.fds fd) (fun i ->
                      i.on_write))
            with
            | Some cb -> guard t cb
            | None -> ())
          ready_w
    end
  done;
  t.loop_tid <- -1
