module E = Histories.Event

type kind =
  | Send of { src : int; dst : int; info : string }
  | Deliver of { src : int; dst : int; info : string }
  | Drop of { src : int; dst : int; reason : string }
  | Timer_fire of { node : int }
  | Invoke of { key : int; proc : int; op : int E.op }
  | Respond of { key : int; proc : int; result : int option }
  | Note of string

type event = { time : float; kind : kind }

type t = {
  mu : Mutex.t;
  buf : event array;
  cap : int;
  mutable n : int;  (* total events recorded over the whole run *)
}

let dummy = { time = 0.0; kind = Note "" }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { mu = Mutex.create (); buf = Array.make capacity dummy; cap = capacity; n = 0 }

let record t ~time kind =
  Mutex.protect t.mu (fun () ->
      t.buf.(t.n mod t.cap) <- { time; kind };
      t.n <- t.n + 1)

let recorded t = Mutex.protect t.mu (fun () -> t.n)
let overwritten t = Mutex.protect t.mu (fun () -> max 0 (t.n - t.cap))

let events t =
  Mutex.protect t.mu (fun () ->
      if t.n <= t.cap then Array.to_list (Array.sub t.buf 0 t.n)
      else
        List.init t.cap (fun i -> t.buf.((t.n + i) mod t.cap)))

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let line_of_event { time; kind } =
  let t = Printf.sprintf "\"t\":%.6f" time in
  match kind with
  | Send { src; dst; info } ->
    Printf.sprintf "{%s,\"kind\":\"send\",\"src\":%d,\"dst\":%d,\"msg\":\"%s\"}"
      t src dst (escape info)
  | Deliver { src; dst; info } ->
    Printf.sprintf
      "{%s,\"kind\":\"deliver\",\"src\":%d,\"dst\":%d,\"msg\":\"%s\"}" t src dst
      (escape info)
  | Drop { src; dst; reason } ->
    Printf.sprintf
      "{%s,\"kind\":\"drop\",\"src\":%d,\"dst\":%d,\"reason\":\"%s\"}" t src dst
      (escape reason)
  | Timer_fire { node } ->
    Printf.sprintf "{%s,\"kind\":\"timer\",\"node\":%d}" t node
  | Invoke { key; proc; op = E.Read } ->
    Printf.sprintf
      "{%s,\"kind\":\"invoke\",\"key\":%d,\"proc\":%d,\"op\":\"read\"}" t key proc
  | Invoke { key; proc; op = E.Write v } ->
    Printf.sprintf
      "{%s,\"kind\":\"invoke\",\"key\":%d,\"proc\":%d,\"op\":\"write\",\"value\":%d}"
      t key proc v
  | Respond { key; proc; result = Some v } ->
    Printf.sprintf
      "{%s,\"kind\":\"respond\",\"key\":%d,\"proc\":%d,\"result\":%d}" t key proc
      v
  | Respond { key; proc; result = None } ->
    Printf.sprintf "{%s,\"kind\":\"respond\",\"key\":%d,\"proc\":%d}" t key proc
  | Note s -> Printf.sprintf "{%s,\"kind\":\"note\",\"text\":\"%s\"}" t (escape s)

let to_jsonl t =
  String.concat "" (List.map (fun e -> line_of_event e ^ "\n") (events t))

let dump t path =
  let oc = open_out path in
  List.iter (fun e -> output_string oc (line_of_event e ^ "\n")) (events t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Replay: recover the operation history from a trace (in memory or    *)
(* from a dumped JSONL file) so it can be re-run through the           *)
(* atomicity checkers offline.                                         *)

let keyed_history t =
  List.filter_map
    (fun { kind; _ } ->
      match kind with
      | Invoke { key; proc; op } -> Some (key, E.Invoke (proc, op))
      | Respond { key; proc; result } -> Some (key, E.Respond (proc, result))
      | _ -> None)
    (events t)

let history t = List.map snd (keyed_history t)

(* A scanner for exactly the key/value shapes [line_of_event] emits —
   not a general JSON parser. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some i
    else go (i + 1)
  in
  go 0

let int_field line key =
  let pat = "\"" ^ key ^ "\":" in
  match find_sub line pat with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    let stop = ref start in
    while
      !stop < String.length line
      && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
    do
      incr stop
    done;
    int_of_string_opt (String.sub line start (!stop - start))

let string_field line key =
  let pat = "\"" ^ key ^ "\":\"" in
  match find_sub line pat with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    (match String.index_from_opt line start '"' with
     | None -> None
     | Some stop -> Some (String.sub line start (stop - start)))

let parse_line line =
  (* [key] is absent from pre-keyspace dumps: default to register 0 *)
  let key = Option.value ~default:0 (int_field line "key") in
  match string_field line "kind" with
  | Some "invoke" ->
    (match (int_field line "proc", string_field line "op") with
     | Some proc, Some "read" -> Some (key, E.Invoke (proc, E.Read))
     | Some proc, Some "write" ->
       Option.map
         (fun v -> (key, E.Invoke (proc, E.Write v)))
         (int_field line "value")
     | _ -> None)
  | Some "respond" ->
    Option.map
      (fun proc -> (key, E.Respond (proc, int_field line "result")))
      (int_field line "proc")
  | _ -> None

let keyed_history_of_jsonl s =
  String.split_on_char '\n' s |> List.filter_map parse_line

let history_of_jsonl s = List.map snd (keyed_history_of_jsonl s)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let keyed_history_of_file path = keyed_history_of_jsonl (read_file path)
let history_of_file path = history_of_jsonl (read_file path)
