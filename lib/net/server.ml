module E = Histories.Event
module Vm = Registers.Vm

type session = {
  src : Transport.node;
  proc : E.proc;
  mutable next_seq : int;  (* next sequence number to admit *)
  stash : (int, Wire.op) Hashtbl.t;  (* out-of-order arrivals *)
  queue : (int * Wire.op) Queue.t;  (* admitted, not yet started *)
  mutable busy : bool;  (* an operation is executing *)
}

type t = {
  tr : Transport.t;
  me : Transport.node;
  quorum : Quorum.t;
  sessions : (Transport.node, session) Hashtbl.t;
  monitor : int Histories.Monitor.t option;
  mutable violation : int Histories.Fastcheck.violation option;
  mutable events_rev : (float * int E.t) list;
  mutable ops_served : int;
  mutable rejected : int;
  mutable timer_armed : bool;
  resend_every : float;
  metrics : Metrics.t;
  trace : Trace.t option;
  m_served : Metrics.counter;
  m_rejected : Metrics.counter;
  h_op : Metrics.histogram;
}

let create ~transport ?(audit = true) ?(resend_every = 0.05) ?metrics ?trace
    ~me ~replicas ~init () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    tr = transport;
    me;
    quorum = Quorum.create ~transport ~me ~replicas ~metrics ();
    sessions = Hashtbl.create 16;
    monitor = (if audit then Some (Histories.Monitor.create ~init) else None);
    violation = None;
    events_rev = [];
    ops_served = 0;
    rejected = 0;
    timer_armed = false;
    resend_every;
    metrics;
    trace;
    m_served = Metrics.counter metrics "ops_served";
    m_rejected = Metrics.counter metrics "ops_rejected";
    h_op = Metrics.histogram metrics "server_op";
  }

let metrics t = t.metrics

let record t ev =
  let time = t.tr.Transport.now () in
  t.events_rev <- (time, ev) :: t.events_rev;
  (match t.trace with
   | None -> ()
   | Some tr ->
     let kind =
       match ev with
       | E.Invoke (proc, op) -> Trace.Invoke { proc; op }
       | E.Respond (proc, result) -> Trace.Respond { proc; result }
     in
     Trace.record tr ~time kind);
  match t.monitor with
  | None -> ()
  | Some m ->
    (match Histories.Monitor.observe m ev with
     | Histories.Monitor.Ok_so_far -> ()
     | Histories.Monitor.Violation v ->
       if t.violation = None then t.violation <- Some v)

(* Retransmission driver: armed while operations are in flight, quiet
   when the service is idle.  Re-armed from each operation start. *)
let rec arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    t.tr.Transport.set_timer ~node:t.me ~delay:t.resend_every (fun () ->
        t.timer_armed <- false;
        (* only phases a full period old can have lost a message *)
        if Quorum.resend_pending ~older_than:t.resend_every t.quorum then
          arm_timer t)
  end

(* Interpret a Bloom micro-step program, mapping each primitive cell
   access to a quorum operation on the replicated real register. *)
let rec exec : 'a. t -> (Wire.payload, 'a) Vm.prog -> ('a -> unit) -> unit =
  fun t prog k ->
  match prog with
  | Vm.Ret a -> k a
  | Vm.Read (reg, cont) ->
    Quorum.read t.quorum ~reg ~k:(fun pl -> exec t (cont pl) k)
  | Vm.Write (reg, pl, cont) ->
    Quorum.write t.quorum ~reg ~value:pl ~k:(fun () -> exec t (cont ()) k)

let respond t s seq result =
  t.ops_served <- t.ops_served + 1;
  Metrics.incr t.m_served;
  t.tr.Transport.send ~src:t.me ~dst:s.src (Wire.Resp { seq; result })

let rec start_next t s =
  if not s.busy then
    match Queue.take_opt s.queue with
    | None -> ()
    | Some (seq, op) ->
      s.busy <- true;
      arm_timer t;
      let t0 = t.tr.Transport.now () in
      let done_op () =
        Metrics.observe t.h_op (t.tr.Transport.now () -. t0)
      in
      (match op with
       | Wire.Read ->
         record t (E.Invoke (s.proc, E.Read));
         exec t
           (Core.Protocol.read_prog ())
           (fun v ->
             record t (E.Respond (s.proc, Some v));
             respond t s seq (Some v);
             done_op ();
             s.busy <- false;
             start_next t s)
       | Wire.Write v when s.proc = 0 || s.proc = 1 ->
         record t (E.Invoke (s.proc, E.Write v));
         exec t
           (Core.Protocol.write_prog ~level:0 ~proc:s.proc v)
           (fun () ->
             record t (E.Respond (s.proc, None));
             respond t s seq None;
             done_op ();
             s.busy <- false;
             start_next t s)
       | Wire.Write _ ->
         (* only processors 0 and 1 hold the two writer roles *)
         t.rejected <- t.rejected + 1;
         Metrics.incr t.m_rejected;
         t.tr.Transport.send ~src:t.me ~dst:s.src
           (Wire.Resp { seq; result = None });
         s.busy <- false;
         start_next t s)

let admit t s =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt s.stash s.next_seq with
    | Some op ->
      Hashtbl.remove s.stash s.next_seq;
      Queue.add (s.next_seq, op) s.queue;
      s.next_seq <- s.next_seq + 1;
      progressed := true
    | None -> continue := false
  done;
  if !progressed then start_next t s

let rec on_message t ~src msg =
  match msg with
  | Wire.Hello { proc } ->
    Hashtbl.replace t.sessions src
      {
        src;
        proc;
        next_seq = 0;
        stash = Hashtbl.create 8;
        queue = Queue.create ();
        busy = false;
      }
  | Wire.Req { seq; op } ->
    (match Hashtbl.find_opt t.sessions src with
     | Some s when seq >= s.next_seq ->
       Hashtbl.replace s.stash seq op;
       admit t s
     | Some _ | None -> ())  (* duplicate or sessionless request *)
  | Wire.Query_reply _ | Wire.Store_ack _ ->
    Quorum.on_message t.quorum ~src msg
  | Wire.Batch msgs -> List.iter (fun m -> on_message t ~src m) msgs
  | Wire.Bye -> Hashtbl.remove t.sessions src
  | Wire.Stats_req { rid } ->
    (* live observability over the wire: no session needed, safe to
       answer anyone who can reach the socket *)
    let stats =
      Metrics.wire_stats t.metrics
      @ [
          ("sessions", Hashtbl.length t.sessions);
          ("audit_violation", if t.violation = None then 0 else 1);
        ]
    in
    t.tr.Transport.send ~src:t.me ~dst:src (Wire.Stats_reply { rid; stats })
  | Wire.Resp _ | Wire.Query _ | Wire.Store _ | Wire.Stats_reply _ -> ()

let history t = List.rev_map snd t.events_rev
let timed_history t = List.rev t.events_rev
let violation t = t.violation
let ops_served t = t.ops_served
let rejected t = t.rejected
let quorum_stats t = Quorum.stats t.quorum
