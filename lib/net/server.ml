module E = Histories.Event
module Vm = Registers.Vm

(* Per-session, per-key execution state.  A session's operations are
   admitted strictly in sequence-number order, then queued per key:
   operations on the same key (the same two-writer register) execute
   one at a time — the paper's a-processor-is-sequential assumption,
   which is per register — while operations on different keys proceed
   concurrently.  That per-key independence is where the sharded
   service's throughput comes from. *)
type session = {
  src : Transport.node;
  proc : E.proc;
  mutable next_seq : int;  (* next sequence number to admit *)
  stash : (int, Wire.op) Hashtbl.t;  (* out-of-order arrivals *)
  queues : (int, (int * Wire.op) Queue.t) Hashtbl.t;
      (* key -> admitted, not yet started *)
  busy : (int, unit) Hashtbl.t;  (* keys with an operation executing *)
}

type t = {
  tr : Transport.t;  (* the corked wrapper when [cork], else [base] *)
  base : Transport.t;
  me : Transport.node;
  owns : int -> bool;
  presequenced : bool;
  cork : bool;
  cork_depth : int ref;
  cork_buf : (Transport.node, Wire.msg list ref) Hashtbl.t;
  registry : Registry.t;
  reconfig : Reconfig.t;
  txns : Txn.t;  (* shared across all cores of a pool *)
  post_override : ((unit -> unit) -> unit) option;
      (* how coordinator thunks re-enter this core (pool: worker queue) *)
  sessions : (Transport.node, session) Hashtbl.t;
  audit : bool;
  init : int;
  monitors : (int, int Histories.Monitor.t) Hashtbl.t;  (* per key *)
  mutable violations_rev : (int * int Histories.Fastcheck.violation) list;
      (* first violation per key, newest first *)
  mutable events_rev : (float * (int * int E.t)) list;  (* (key, event) *)
  mutable ops_served : int;
  mutable rejected : int;
  mutable timer_armed : bool;
  resend_every : float;
  storage : Storage.t option;
  mutable flush_armed : bool;
  metrics : Metrics.t;
  trace : Trace.t option;
  m_served : Metrics.counter;
  m_rejected : Metrics.counter;
  h_op : Metrics.histogram;
  c_shard_ops : Metrics.counter array;
}

let monitor_of t key =
  match Hashtbl.find_opt t.monitors key with
  | Some m -> m
  | None ->
    let m = Histories.Monitor.create ~init:t.init in
    Hashtbl.replace t.monitors key m;
    m

(* Ship a corked destination's buffered messages, batching whenever
   there is more than one.  Chunked well under both the decoder's
   [Wire.max_batch] and [Wire.max_frame]. *)
let cork_chunk = 2048

let flush_cork t =
  if Hashtbl.length t.cork_buf > 0 then begin
    let items =
      Hashtbl.fold (fun dst l acc -> (dst, List.rev !l) :: acc) t.cork_buf []
    in
    Hashtbl.reset t.cork_buf;
    List.iter
      (fun (dst, msgs) ->
        let rec ship = function
          | [] -> ()
          | [ m ] -> t.base.Transport.send ~src:t.me ~dst m
          | ms ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | m :: rest -> take (n - 1) (m :: acc) rest
            in
            let chunk, rest = take cork_chunk [] ms in
            t.base.Transport.send ~src:t.me ~dst (Wire.Batch chunk);
            ship rest
        in
        ship msgs)
      items
  end

let with_cork t f =
  if not t.cork then f ()
  else begin
    incr t.cork_depth;
    Fun.protect
      ~finally:(fun () ->
        decr t.cork_depth;
        if !(t.cork_depth) = 0 then flush_cork t)
      f
  end

let metrics t = t.metrics
let registry t = t.registry
let reconfig t = t.reconfig
let epoch t = Reconfig.epoch t.reconfig
let shards t = Registry.shards t.registry
let engine_spec t = Registry.spec t.registry

let record t key ev =
  let time = t.tr.Transport.now () in
  t.events_rev <- (time, (key, ev)) :: t.events_rev;
  (match t.trace with
   | None -> ()
   | Some tr ->
     let kind =
       match ev with
       | E.Invoke (proc, op) -> Trace.Invoke { key; proc; op }
       | E.Respond (proc, result) -> Trace.Respond { key; proc; result }
     in
     Trace.record tr ~time kind);
  if t.audit then
    match Histories.Monitor.observe (monitor_of t key) ev with
    | Histories.Monitor.Ok_so_far -> ()
    | Histories.Monitor.Violation v ->
      if not (List.mem_assoc key t.violations_rev) then
        t.violations_rev <- (key, v) :: t.violations_rev

(* Retransmission driver: armed while operations are in flight, quiet
   when the service is idle.  Re-armed from each operation start. *)
let rec arm_timer t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    t.tr.Transport.set_timer ~node:t.me ~delay:t.resend_every (fun () ->
        t.timer_armed <- false;
        (* only phases a full period old can have lost a message *)
        if Registry.resend_pending ~older_than:t.resend_every t.registry then
          arm_timer t)
  end

(* Interpret a Bloom micro-step program for one key, mapping each
   primitive cell access to a quorum operation on the corresponding
   replicated real register of that key.  Access goes through the
   reconfiguration coordinator, which is the registry outside a
   migration and the dual-quorum discipline during one. *)
let rec exec :
  'a. t -> int -> (Wire.payload, 'a) Vm.prog -> ('a -> unit) -> unit =
  fun t key prog k ->
  match prog with
  | Vm.Ret a -> k a
  | Vm.Read (reg, cont) ->
    Reconfig.read t.reconfig ~key ~reg ~k:(fun pl -> exec t key (cont pl) k)
  | Vm.Write (reg, pl, cont) ->
    Reconfig.write t.reconfig ~key ~reg ~value:pl ~k:(fun () ->
        exec t key (cont ()) k)

let respond t s seq result =
  t.ops_served <- t.ops_served + 1;
  Metrics.incr t.m_served;
  t.tr.Transport.send ~src:t.me ~dst:s.src (Wire.Resp { seq; result })

(* Every client-visible operation, keyed: the legacy unkeyed ops are
   the key-0 register.  For a multi-key op this is its *routing* key —
   the first listed key (or 0 when the list is empty, so even an
   invalid frame has a well-defined core that will reject it). *)
let key_of_op = function
  | Wire.Read | Wire.Write _ -> 0
  | Wire.Read_k { key } | Wire.Write_k { key; _ } -> key
  | Wire.Txn_k { writes = (key, _) :: _ } | Wire.Snap_k { keys = key :: _ } ->
    key
  | Wire.Txn_k { writes = [] } | Wire.Snap_k { keys = [] } -> 0

let keys_of_op = function
  | Wire.Txn_k { writes } -> List.map fst writes
  | Wire.Snap_k { keys } -> keys
  | op -> [ key_of_op op ]

let kind_of_op = function
  | Wire.Txn_k { writes } -> Some (Txn.Writes writes)
  | Wire.Snap_k { keys } -> Some (Txn.Snap keys)
  | _ -> None

let queue_of s key =
  match Hashtbl.find_opt s.queues key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace s.queues key q;
    q

(* How coordinator thunks re-enter this core.  A standalone server
   runs them inline under a cork; a pool passes [?post] so they go
   through the worker's queue and execute on the owning domain. *)
let post_of t =
  match t.post_override with
  | Some p -> p
  | None -> fun f -> with_cork t f

let rec start_next t s key =
  (* a key in a migration's drain phase parks here: the op stays
     queued, and the coordinator's unpark hook re-enters once the
     cutover has installed the new placement *)
  if (not (Hashtbl.mem s.busy key)) && Reconfig.admitting t.reconfig key then
    match Queue.take_opt (queue_of s key) with
    | None -> ()
    | Some (seq, op) ->
      Hashtbl.replace s.busy key ();
      arm_timer t;
      Metrics.incr t.c_shard_ops.(Registry.shard_of_key t.registry key);
      (* the generation token gates the migration's settle (pre-entry
         ops) and drain (their dual-writing successors) phases *)
      let gen = Reconfig.op_started t.reconfig ~key in
      let t0 = t.tr.Transport.now () in
      let finish () =
        Metrics.observe t.h_op (t.tr.Transport.now () -. t0);
        Hashtbl.remove s.busy key;
        Reconfig.op_finished t.reconfig ~key ~gen;
        start_next t s key
      in
      let reject () =
        t.rejected <- t.rejected + 1;
        Metrics.incr t.m_rejected;
        t.tr.Transport.send ~src:t.me ~dst:s.src
          (Wire.Resp { seq; result = None });
        Hashtbl.remove s.busy key;
        Reconfig.op_finished t.reconfig ~key ~gen;
        start_next t s key
      in
      (match op with
       | Wire.Txn_k _ | Wire.Snap_k _ -> start_multi t s key seq op gen
       | Wire.Read | Wire.Read_k _ when key < 0 -> reject ()
       | Wire.Read | Wire.Read_k _ ->
         record t key (E.Invoke (s.proc, E.Read));
         exec t key
           (Core.Protocol.read_prog ())
           (fun v ->
             record t key (E.Respond (s.proc, Some v));
             respond t s seq (Some v);
             finish ())
       | Wire.Write v | Wire.Write_k { value = v; _ }
         when key >= 0 && (s.proc = 0 || s.proc = 1) ->
         record t key (E.Invoke (s.proc, E.Write v));
         exec t key
           (Core.Protocol.write_prog ~level:0 ~proc:s.proc v)
           (fun () ->
             record t key (E.Respond (s.proc, None));
             respond t s seq None;
             finish ())
       | Wire.Write _ | Wire.Write_k _ ->
         (* only processors 0 and 1 hold the two writer roles *)
         reject ())

(* Phase 1 of a multi-key op, entered once per owned key when that key
   reaches its session queue's head (the key is already marked busy by
   [start_next]).  Everything from here on is driven by the shared
   coordinator; the thunks we hand it post back onto this core so
   engine operations, responses and queue pumps all run on the owning
   domain. *)
and start_multi t s key seq op gen =
  let post = post_of t in
  let t0 = t.tr.Transport.now () in
  let kind =
    match kind_of_op op with Some k -> k | None -> assert false
  in
  let min_key = List.fold_left min max_int (Txn.keys_of_kind kind) in
  let run_key () =
    post (fun () ->
        arm_timer t;
        match kind with
        | Txn.Writes writes ->
          let v = List.assoc key writes in
          record t key (E.Invoke (s.proc, E.Write v));
          exec t key
            (Core.Protocol.write_prog ~level:0 ~proc:s.proc v)
            (fun () ->
              record t key (E.Respond (s.proc, None));
              Txn.key_done t.txns ~src:s.src ~seq ~key ())
        | Txn.Snap _ ->
          (* pin the core's store: GC must not reorganize the log under
             a snapshot read's consistent cut *)
          (match t.storage with Some st -> Storage.pin st | None -> ());
          record t key (E.Invoke (s.proc, E.Read));
          exec t key
            (Core.Protocol.read_prog ())
            (fun v ->
              record t key (E.Respond (s.proc, Some v));
              (match t.storage with
               | Some st -> Storage.unpin st
               | None -> ());
              Txn.key_done t.txns ~src:s.src ~seq ~key ~value:v ()))
  in
  let finish () =
    post (fun () ->
        Metrics.observe t.h_op (t.tr.Transport.now () -. t0);
        Hashtbl.remove s.busy key;
        Reconfig.op_finished t.reconfig ~key ~gen;
        start_next t s key)
  in
  let resp_thunk =
    (* the owner of the smallest key is the coordinator: it answers *)
    if key = min_key then
      Some
        (fun values ->
          post (fun () ->
              match values with
              | None -> respond t s seq None
              | Some vs ->
                t.ops_served <- t.ops_served + 1;
                Metrics.incr t.m_served;
                t.tr.Transport.send ~src:t.me ~dst:s.src
                  (Wire.Resp_snap { seq; values = vs })))
    else None
  in
  Txn.key_ready t.txns ~src:s.src ~seq ~kind ~key ~exec:run_key ~finish
    ?respond:resp_thunk ()

let create ~transport ?(audit = true) ?(resend_every = 0.05) ?engine
    ?read_quorum ?storage ?metrics ?trace ?map ?(cork = false)
    ?(presequenced = false) ?owns ?txns ?torn_txn ?post ?skip_dual_write
    ?reconfig_enabled ~me ~replicas ~init () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let map =
    match map with Some m -> m | None -> Shard_map.create ~shards:1 ()
  in
  let owns = match owns with Some f -> f | None -> fun _ -> true in
  let txns =
    match txns with
    | Some x -> x
    | None -> Txn.create ?torn:torn_txn ~audit ~init ()
  in
  let cork_depth = ref 0 in
  let cork_buf : (Transport.node, Wire.msg list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Corked transport: while a turn is open, sends accumulate per
     destination and go out as one [Wire.Batch] frame per peer when
     the outermost cork closes — one syscall instead of one per
     quorum message.  Timer callbacks get their own cork so resend
     fan-outs and deferred flush acks coalesce too.  [self] ties the
     recursive knot (the wrapper needs the [t] it is a field of). *)
  let self = ref None in
  let wrapped =
    if not cork then transport
    else
      {
        transport with
        Transport.send =
          (fun ~src ~dst msg ->
            if !cork_depth = 0 then transport.Transport.send ~src ~dst msg
            else
              match Hashtbl.find_opt cork_buf dst with
              | Some l -> l := msg :: !l
              | None -> Hashtbl.replace cork_buf dst (ref [ msg ]));
        set_timer =
          (fun ~node ~delay f ->
            transport.Transport.set_timer ~node ~delay (fun () ->
                match !self with
                | Some t -> with_cork t f
                | None -> f ()));
      }
  in
  let registry =
    Registry.create ~transport:wrapped ~me ~replicas ~map ?engine ?read_quorum
      ?storage ~metrics ()
  in
  let reconfig =
    Reconfig.create ~registry ?enabled:reconfig_enabled ?skip_dual_write ()
  in
  let t =
    {
      tr = wrapped;
      base = transport;
      me;
      owns;
      presequenced;
      cork;
      cork_depth;
      cork_buf;
      registry;
      reconfig;
      txns;
      post_override = post;
      sessions = Hashtbl.create 16;
      audit;
      init;
      monitors = Hashtbl.create 8;
      violations_rev = [];
      events_rev = [];
      ops_served = 0;
      rejected = 0;
      timer_armed = false;
      resend_every;
      storage;
      flush_armed = false;
      metrics;
      trace;
      m_served = Metrics.counter metrics "ops_served";
      m_rejected = Metrics.counter metrics "ops_rejected";
      h_op = Metrics.histogram metrics "server_op";
      c_shard_ops =
        Array.init (Shard_map.shards map) (fun s ->
            Metrics.counter metrics (Fmt.str "shard%d_ops" s));
    }
  in
  self := Some t;
  (* a cutover re-kicks every session's queue for the migrated key:
     ops parked during the drain phase dispatch here, now routed by
     the advanced map *)
  Reconfig.set_unpark reconfig (fun key ->
      Hashtbl.iter (fun _ s -> start_next t s key) t.sessions);
  (* A restarted durable server recovers the writes it had issued;
     its fresh monitors never saw them, so a read of a recovered key
     would be flagged.  Seed each recovered key's monitor with its
     writer roles' last values as completed concurrent writes: a read
     may then return either (or a later write), which is exactly the
     continuity the recovered state promises.  Exact when no write was
     in flight at the crash; an in-flight write that reached no
     majority member can still produce a spurious flag, because the
     value it overwrote at the server is not locally recoverable —
     the audit fails suspicious rather than silent. *)
  (if audit then
     match storage with
     | None -> ()
     | Some st ->
       let by_key = Hashtbl.create 8 in
       List.iter
         (fun (reg, (_ts, pl)) ->
           if reg >= 0 && owns (Shard_map.key_of_reg reg) then begin
             let key = Shard_map.key_of_reg reg in
             let role = reg land 1 in
             let prev =
               Option.value ~default:[] (Hashtbl.find_opt by_key key)
             in
             Hashtbl.replace by_key key
               ((role, Registers.Tagged.v pl) :: prev)
           end)
         (Storage.contents st);
       Hashtbl.iter
         (fun key writes ->
           let m = monitor_of t key in
           let observe ev = ignore (Histories.Monitor.observe m ev) in
           List.iter
             (fun (role, v) -> observe (E.Invoke (role, E.Write v)))
             writes;
           List.iter (fun (role, _) -> observe (E.Respond (role, None))) writes)
         by_key);
  t

(* Queue [op] into every owned touched key's session queue, returning
   the touched (owned) keys.  A structurally invalid multi-key op —
   empty, duplicate or negative keys, oversize, or a transaction from
   a non-writer processor — is rejected with an empty [Resp] by
   exactly one core, the owner of [key_of_op op], so a worker pool
   answers once. *)
let enqueue_op t s seq op =
  match op with
  | Wire.Txn_k _ | Wire.Snap_k _ ->
    let keys = keys_of_op op in
    let ok =
      Txn.valid_keys keys
      &&
      match op with
      | Wire.Txn_k _ -> s.proc = 0 || s.proc = 1
      | _ -> true
    in
    if not ok then begin
      if t.owns (key_of_op op) then begin
        t.rejected <- t.rejected + 1;
        Metrics.incr t.m_rejected;
        t.tr.Transport.send ~src:t.me ~dst:s.src
          (Wire.Resp { seq; result = None })
      end;
      []
    end
    else
      List.filter
        (fun key ->
          if t.owns key then begin
            Queue.add (seq, op) (queue_of s key);
            true
          end
          else false)
        keys
  | _ ->
    let key = key_of_op op in
    if t.owns key then begin
      Queue.add (seq, op) (queue_of s key);
      [ key ]
    end
    else []

let admit t s =
  (* collect the newly in-order ops, then kick each touched key once;
     sequence numbers advance over every in-order arrival, but only
     owned keys are queued — under a worker pool each worker sees the
     whole session stream and executes exactly its own share *)
  let touched = ref [] in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt s.stash s.next_seq with
    | Some op ->
      Hashtbl.remove s.stash s.next_seq;
      List.iter
        (fun key ->
          if not (List.mem key !touched) then touched := key :: !touched)
        (enqueue_op t s s.next_seq op);
      s.next_seq <- s.next_seq + 1
    | None -> continue := false
  done;
  List.iter (fun key -> start_next t s key) (List.rev !touched)

(* Group-commit driver for the server's own wts store: with a flush
   deadline, arm one transport timer and coalesce across messages;
   without one, commit whatever this message queued before returning
   (still one fsync for a whole client Batch).  The server node is
   never crash-faulted by the harnesses, so the armed flag cannot be
   wedged by a dead-node timer skip. *)
let rec drive_flush t =
  match t.storage with
  | None -> ()
  | Some st ->
    if Storage.pending st > 0 then begin
      let d = Storage.flush_deadline st in
      if d <= 0.0 then Storage.flush st
      else if not t.flush_armed then begin
        t.flush_armed <- true;
        t.tr.Transport.set_timer ~node:t.me ~delay:d (fun () ->
            t.flush_armed <- false;
            Storage.flush st;
            drive_flush t)
      end
    end

let rec on_message_inner t ~src msg =
  match msg with
  | Wire.Hello { proc } ->
    Hashtbl.replace t.sessions src
      {
        src;
        proc;
        next_seq = 0;
        stash = Hashtbl.create 8;
        queues = Hashtbl.create 4;
        busy = Hashtbl.create 4;
      }
  | Wire.Req { seq; op } ->
    (match Hashtbl.find_opt t.sessions src with
     | Some s when t.presequenced ->
       (* the router upstream already delivers each session's ops in
          sequence order and sends us only the ops we own: queue
          directly, no stash — sequence numbers may legitimately skip
          over the ops other cores own *)
       if seq >= s.next_seq then begin
         s.next_seq <- seq + 1;
         List.iter (fun key -> start_next t s key) (enqueue_op t s seq op)
       end
     | Some s when seq >= s.next_seq ->
       Hashtbl.replace s.stash seq op;
       admit t s
     | Some _ | None -> ())  (* duplicate or sessionless request *)
  | Wire.Query_reply _ | Wire.Store_ack _ | Wire.Ack2 _ | Wire.Query2_reply _
    ->
    Registry.on_message t.registry ~src msg
  | Wire.Batch msgs -> List.iter (fun m -> on_message_inner t ~src m) msgs
  | Wire.Bye -> Hashtbl.remove t.sessions src
  | Wire.Reconfig { rid; key; to_shard; epoch } ->
    (* migration control needs no session (like Stats_req); the ack is
       deferred to the coordinator's completion and may be sent from a
       later turn — [src] is captured by the finish closure *)
    Reconfig.start t.reconfig ~key ~to_shard ~epoch
      ~finish:(fun ~ok ~epoch ->
        t.tr.Transport.send ~src:t.me ~dst:src
          (Wire.Reconfig_ack { rid; epoch; ok }))
  | Wire.Epoch_req { rid } ->
    t.tr.Transport.send ~src:t.me ~dst:src
      (Wire.Epoch_reply
         { rid; epoch = Reconfig.epoch t.reconfig; shards = shards t })
  | Wire.Stats_req { rid } ->
    (* live observability over the wire: no session needed, safe to
       answer anyone who can reach the socket *)
    let tx = Txn.stats t.txns in
    let stats =
      Metrics.wire_stats t.metrics
      @ [
          ("sessions", Hashtbl.length t.sessions);
          ("shards", shards t);
          ("engine", Engine.kind_code (Registry.spec t.registry).Engine.kind);
          ("audit_violation", if t.violations_rev = [] then 0 else 1);
          ("txns_committed", tx.Txn.txns_committed);
          ("snaps_served", tx.Txn.snaps_served);
          ("txn_violation", if Txn.violations t.txns = [] then 0 else 1);
        ]
      @ Reconfig.stats t.reconfig
    in
    t.tr.Transport.send ~src:t.me ~dst:src (Wire.Stats_reply { rid; stats })
  | Wire.Resp _ | Wire.Resp_snap _ | Wire.Query _ | Wire.Store _
  | Wire.Stats_reply _ | Wire.Store2 _ | Wire.Query2 _ | Wire.Engine_hello _
  | Wire.Reconfig_ack _ | Wire.Epoch_reply _ -> ()

let on_message t ~src msg =
  with_cork t (fun () ->
      on_message_inner t ~src msg;
      drive_flush t)

let keyed_history t = List.rev_map (fun (_, kev) -> kev) t.events_rev
let history t = List.rev_map (fun (_, (_, ev)) -> ev) t.events_rev

let key_history t key =
  List.rev
    (List.filter_map
       (fun (_, (k, ev)) -> if k = key then Some ev else None)
       t.events_rev)

let keys t =
  List.sort_uniq compare (List.rev_map (fun (_, (k, _)) -> k) t.events_rev)

let timed_history t = List.rev_map (fun (time, (_, ev)) -> (time, ev)) t.events_rev
let timed_keyed_history t = List.rev t.events_rev
let violations t = List.rev t.violations_rev

let violation t =
  match List.rev t.violations_rev with [] -> None | (_, v) :: _ -> Some v

let ops_served t = t.ops_served
let rejected t = t.rejected
let quorum_stats t = Registry.stats t.registry
let txns t = t.txns
let txn_violations t = Txn.violations t.txns
