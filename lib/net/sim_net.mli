(** A deterministic in-process simulated network with seeded fault
    injection.

    Messages in flight live in a virtual-time priority queue; {!step}
    pops the earliest event and invokes the destination's handler
    (which may send further messages and set timers).  All
    nondeterminism — delivery delays (hence reordering), drops,
    duplicates — is drawn from one seeded PRNG, so a run is a pure
    function of [(seed, faults, workload)] and any interleaving found
    by a fault-schedule sweep can be replayed exactly.

    Faults modelled: message delay/reorder/drop/duplication per link
    ([faults]), network partition ({!partition}/{!heal}), and process
    crash ({!crash} — the node stops receiving forever; messages
    already sent by it still arrive, like packets in flight when a
    process dies). *)

type faults = {
  drop : float;  (** per-message drop probability *)
  duplicate : float;  (** per-message duplication probability *)
  min_delay : float;
  max_delay : float;
      (** per-message delivery delay, uniform in
          [[min_delay, max_delay]]; jitter is what reorders messages *)
  immune : src:Transport.node -> dst:Transport.node -> bool;
      (** links on which drop/duplicate are suppressed (delay still
          applies).  Client/server sessions assume a reliable link —
          TCP-like — so harnesses mark them immune; replica links are
          the crash-prone, lossy medium. *)
}

val reliable : faults
(** No drops, no duplicates, constant delay 1.0. *)

val lossy :
  ?drop:float ->
  ?duplicate:float ->
  ?min_delay:float ->
  ?max_delay:float ->
  unit ->
  faults
(** Defaults: [drop 0.1], [duplicate 0.05], delays in [[0.5, 2.0]],
    nothing immune. *)

type stats = {
  delivered : int;
  dropped : int;  (** lost to fault injection or a dead destination *)
  duplicated : int;
  blocked : int;  (** lost to a partition *)
  timer_fires : int;
}

type t

val create :
  seed:int -> faults:faults -> ?metrics:Metrics.t -> ?trace:Trace.t -> unit -> t
(** [metrics] (default: a fresh, private instance) receives the
    transport counters under the same names as {!Socket_net}
    ([frames_sent], [frames_delivered], …); at quiescence
    [frames_sent = frames_delivered + frames_dropped + frames_blocked].
    With [trace], every send/deliver/drop/timer-fire is appended to
    the ring stamped with its virtual time. *)

val metrics : t -> Metrics.t

val transport : t -> Transport.t

val register :
  t -> Transport.node -> (src:Transport.node -> Wire.msg -> unit) -> unit
(** Install the node's message handler.  Handlers may reentrantly call
    [send]/[set_timer]. *)

val crash : t -> Transport.node -> unit
(** The node stops receiving.  Its handler closure — and hence its
    in-memory state — is retained, so a plain crash+{!restart} models
    a pause (a long GC, a suspended VM), {e not} a process death: a
    real restart forgets everything volatile.  Use {!crash_amnesia}
    for that. *)

val crash_amnesia : t -> Transport.node -> unit
(** {!crash}, and additionally mark the node's volatile state as lost:
    the next {!restart} runs the node's {!on_restart} recovery hook,
    which must rebuild the handler state — from stable storage if the
    node has any, or from nothing (the bug durability exists to
    prevent). *)

val on_restart : t -> Transport.node -> (unit -> unit) -> unit
(** Install the node's recovery hook, run by {!restart} iff the
    preceding crash was a {!crash_amnesia}.  Typically re-{!register}s
    the handler over freshly recovered state. *)

val restart : t -> Transport.node -> unit
(** Undo a {!crash}: the node receives messages again.  After a plain
    crash its state was retained; after a {!crash_amnesia} the
    recovery hook (if any) is invoked first. *)

val alive : t -> Transport.node -> bool

val partition : t -> Transport.node list -> Transport.node list -> unit
(** Sever every link between the two groups (both directions; messages
    crossing the cut are counted [blocked] and lost). *)

val heal : t -> unit

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute virtual time — fault schedules
    (crash this replica at t, heal at t') are built from this. *)

val now : t -> float

val step : t -> bool
(** Deliver the earliest pending event; [false] when the queue is
    empty (the system is quiescent). *)

val run : ?max_steps:int -> t -> int
(** Step until quiescent or [max_steps] (default 1_000_000); returns
    the number of steps taken. *)

(** {2 Controlled stepping}

    A schedule explorer takes over the simulator's one source of
    nondeterminism — which pending event fires next — by reading
    {!pending} and calling {!fire} on a chosen index instead of
    {!step}.  The snapshot is in canonical (time, seq) order (the order
    {!step} would drain), so an index names an event deterministically
    and a list of indices is a replayable schedule. *)

type pending_ev = {
  idx : int;  (** index to pass to {!fire} *)
  seq : int;
      (** the event's scheduling sequence number — a stable identity:
          it follows the entry while it sits in the queue, and replays
          of the same choice prefix reproduce it exactly *)
  time : float;  (** scheduled virtual delivery time *)
  timer : bool;  (** [true] for timers; [src]/[dst] are the owner *)
  src : int;
  dst : int;
  info : string Lazy.t;  (** pretty-printed payload, forced on demand *)
}

val pending : t -> pending_ev list
(** Snapshot of the event queue, earliest first.  Indices are valid
    until the next mutation ([fire], [step], [send], …). *)

val fire : t -> int -> bool
(** Execute the [i]-th event of the current {!pending} snapshot out of
    order (clock advances to [max now time]).  [false] if the index is
    out of range. *)

val stats : t -> stats
