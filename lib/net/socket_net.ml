type endpoint = {
  node : int;
  lfd : Unix.file_descr;
  hmu : Mutex.t;  (* serializes handler + timer callbacks for the node *)
  handler : src:int -> Wire.msg -> unit;
  stopped : bool Atomic.t;
}

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (* serializes frame writes *)
}

(* Counters and histograms interned once at [create]; hot paths touch
   only the resolved handles. *)
type ctrs = {
  frames_sent : Metrics.counter;
  frames_delivered : Metrics.counter;
  frames_dropped : Metrics.counter;
  frames_retried : Metrics.counter;
  frames_oversized : Metrics.counter;
  decode_errors : Metrics.counter;
  conn_opened : Metrics.counter;
  conn_closed : Metrics.counter;
  conn_failed : Metrics.counter;
  conn_stall : Metrics.counter;
  timer_fires : Metrics.counter;
  timers_dropped : Metrics.counter;
  crashes : Metrics.counter;
  handler_service : Metrics.histogram;
}

type t = {
  dir : string;
  mu : Mutex.t;  (* guards the tables and thread list *)
  eps : (int, endpoint) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;  (* outbound, keyed by destination *)
  mutable threads : Thread.t list;
  closed : bool Atomic.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  c : ctrs;
}

let poll_period = 0.05
let max_frame = Wire.max_frame
let connect_timeout = 1.0

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d =
      Filename.concat base
        (Fmt.str "bloomnet-%d-%d" (Unix.getpid ()) (n + Random.bits ()))
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 0

let create ?dir ?metrics ?trace () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let dir =
    match dir with
    | Some d ->
      (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
    | None -> fresh_dir ()
  in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let c =
    {
      frames_sent = Metrics.counter metrics "frames_sent";
      frames_delivered = Metrics.counter metrics "frames_delivered";
      frames_dropped = Metrics.counter metrics "frames_dropped";
      frames_retried = Metrics.counter metrics "frames_retried";
      frames_oversized = Metrics.counter metrics "frames_oversized";
      decode_errors = Metrics.counter metrics "decode_errors";
      conn_opened = Metrics.counter metrics "conn_opened";
      conn_closed = Metrics.counter metrics "conn_closed";
      conn_failed = Metrics.counter metrics "conn_failed";
      conn_stall = Metrics.counter metrics "conn_stall";
      timer_fires = Metrics.counter metrics "timer_fires";
      timers_dropped = Metrics.counter metrics "timers_dropped";
      crashes = Metrics.counter metrics "crashes";
      handler_service = Metrics.histogram metrics "handler_service";
    }
  in
  {
    dir;
    mu = Mutex.create ();
    eps = Hashtbl.create 8;
    conns = Hashtbl.create 8;
    threads = [];
    closed = Atomic.make false;
    metrics;
    trace;
    c;
  }

let dir t = t.dir
let metrics t = t.metrics
let path t node = Filename.concat t.dir (Fmt.str "n%d.sock" node)

let trace_ev t kind =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr ~time:(Unix.gettimeofday ()) kind

let add_thread t th = Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)

(* Read exactly [len] bytes, polling so the thread notices [stopped]
   without relying on close() interrupting a blocked read.  EINTR from
   select/read is a signal, not a peer failure — retrying (the loop
   re-runs the select) must not tear the connection down, or a stray
   SIGCHLD would drop well-formed frames mid-read. *)
let read_exact ep fd buf len =
  let got = ref 0 in
  let ok = ref true in
  (try
     while !ok && !got < len do
       if Atomic.get ep.stopped then ok := false
       else begin
         match Unix.select [ fd ] [] [] poll_period with
         | [], _, _ -> ()
         | _ ->
           (match Unix.read fd buf !got (len - !got) with
            | 0 -> ok := false
            | k -> got := !got + k
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       end
     done
   with Unix.Unix_error _ | Sys_error _ -> ok := false);
  !ok

let recv_loop t ep cfd =
  let hdr = Bytes.create Wire.header_size in
  let continue = ref true in
  while !continue do
    if not (read_exact ep cfd hdr Wire.header_size) then continue := false
    else begin
      let len, src = Wire.parse_header hdr in
      if len < 0 || len > max_frame then continue := false
      else begin
        let body = Bytes.create len in
        if not (read_exact ep cfd body len) then continue := false
        else
          match Wire.decode (Bytes.to_string body) with
          | Error _ ->
            (* a framing bug or corrupted stream: count it, then kill
               the connection — the stream can no longer be trusted *)
            Metrics.incr t.c.decode_errors;
            continue := false
          | Ok msg ->
            Metrics.incr t.c.frames_delivered;
            trace_ev t
              (Trace.Deliver
                 { src; dst = ep.node; info = Fmt.str "%a" Wire.pp msg });
            Mutex.protect ep.hmu (fun () ->
                if not (Atomic.get ep.stopped) then begin
                  let t0 = Unix.gettimeofday () in
                  ep.handler ~src msg;
                  Metrics.observe t.c.handler_service
                    (Unix.gettimeofday () -. t0)
                end)
      end
    end
  done;
  try Unix.close cfd with Unix.Unix_error _ -> ()

let accept_loop t ep =
  let continue = ref true in
  while !continue do
    if Atomic.get ep.stopped then continue := false
    else
      match Unix.select [ ep.lfd ] [] [] poll_period with
      | [], _, _ -> ()
      | _ ->
        (match Unix.accept ep.lfd with
         | cfd, _ -> add_thread t (Thread.create (fun () -> recv_loop t ep cfd) ())
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error _ -> continue := false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close ep.lfd with Unix.Unix_error _ -> ()

let listen t node handler =
  let p = path t node in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX p);
  Unix.listen lfd 64;
  let ep = { node; lfd; hmu = Mutex.create (); handler; stopped = Atomic.make false } in
  Mutex.protect t.mu (fun () -> Hashtbl.replace t.eps node ep);
  add_thread t (Thread.create (fun () -> accept_loop t ep) ())

let drop_conn t dst =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.conns dst with
      | Some c ->
        Hashtbl.remove t.conns dst;
        Metrics.incr t.c.conn_closed;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())
      | None -> ())

(* Connect without ever blocking the caller for long: the socket is
   non-blocking, and a connection that cannot complete within
   [connect_timeout] (or at all — on Unix-domain sockets a full
   listener backlog surfaces as EAGAIN) is abandoned and counted as a
   [conn_stall].  Crucially this runs with NO lock held. *)
let try_connect t dst =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close_quietly () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Unix.set_nonblock fd;
    Unix.connect fd (Unix.ADDR_UNIX (path t dst))
  with
  | () ->
    Unix.clear_nonblock fd;
    Some fd
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
    (* not the documented Unix-domain behaviour, but cheap to handle:
       wait (bounded) for the connect to resolve *)
    (match Unix.select [] [ fd ] [] connect_timeout with
     | _, [ _ ], _ ->
       (match Unix.getsockopt_error fd with
        | None ->
          Unix.clear_nonblock fd;
          Some fd
        | Some _ ->
          close_quietly ();
          Metrics.incr t.c.conn_failed;
          None)
     | _ ->
       close_quietly ();
       Metrics.incr t.c.conn_stall;
       None
     | exception (Unix.Unix_error _ | Sys_error _) ->
       close_quietly ();
       Metrics.incr t.c.conn_failed;
       None)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* the peer exists but is not accepting (backlog full): dropping
       the frame beats stalling every sender behind this destination *)
    close_quietly ();
    Metrics.incr t.c.conn_stall;
    None
  | exception (Unix.Unix_error _ | Sys_error _) ->
    close_quietly ();
    Metrics.incr t.c.conn_failed;
    None

let get_conn t dst =
  match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.conns dst) with
  | Some c -> Some c
  | None ->
    (* connect OUTSIDE the table lock: a slow or unreachable peer must
       not stall sends to every other destination (the lock is only
       retaken to install the result, tolerating a racing winner) *)
    (match try_connect t dst with
     | None -> None
     | Some fd ->
       Mutex.protect t.mu (fun () ->
           match Hashtbl.find_opt t.conns dst with
           | Some winner ->
             (* another sender connected while we did; keep theirs *)
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Some winner
           | None ->
             let c = { fd; wmu = Mutex.create () } in
             Hashtbl.replace t.conns dst c;
             Metrics.incr t.c.conn_opened;
             Some c))

(* Like Storage's write loop: EINTR means a signal landed mid-write,
   not that the peer failed — retry, or a stray signal tears a frame
   in half on the wire and the receiver counts a decode error. *)
let rec write_retry fd b off len =
  try Unix.write fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd b off len

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + write_retry fd b !sent (n - !sent)
  done

let send t ~src ~dst msg =
  match Wire.frame ~src msg with
  | exception Invalid_argument _ ->
    (* over [Wire.max_frame]: surfaced as a counted drop rather than a
       truncated header the receiver would choke on *)
    Metrics.incr t.c.frames_oversized;
    trace_ev t (Trace.Drop { src; dst; reason = "oversized" })
  | frame ->
    Metrics.incr t.c.frames_sent;
    let write_to c = Mutex.protect c.wmu (fun () -> write_all c.fd frame) in
    let dropped reason =
      Metrics.incr t.c.frames_dropped;
      trace_ev t (Trace.Drop { src; dst; reason })
    in
    (match get_conn t dst with
     | None -> dropped "no-conn"  (* dead or absent peer: lossy by contract *)
     | Some c ->
       (try
          write_to c;
          trace_ev t (Trace.Send { src; dst; info = Fmt.str "%a" Wire.pp msg })
        with Unix.Unix_error _ | Sys_error _ ->
          (* the peer may have restarted behind our cached connection
             (e.g. a client re-run with the same processor id): retry
             once on a fresh connection before giving the frame up *)
          drop_conn t dst;
          Metrics.incr t.c.frames_retried;
          (match get_conn t dst with
           | None -> dropped "no-conn"
           | Some c ->
             (try
                write_to c;
                trace_ev t
                  (Trace.Send { src; dst; info = Fmt.str "%a" Wire.pp msg })
              with Unix.Unix_error _ | Sys_error _ ->
                drop_conn t dst;
                dropped "write-failed"))))

let set_timer t ~node ~delay f =
  add_thread t
    (Thread.create
       (fun () ->
         Thread.delay delay;
         match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
         | Some ep ->
           Mutex.protect ep.hmu (fun () ->
               if not (Atomic.get ep.stopped) then begin
                 Metrics.incr t.c.timer_fires;
                 trace_ev t (Trace.Timer_fire { node });
                 f ()
               end)
         | None ->
           (* the node is gone (or was never registered here): firing
              [f] anyway would race it against the node's handlers with
              no mutex held — drop the timer instead, and count it *)
           Metrics.incr t.c.timers_dropped)
       ())

let transport t =
  {
    Transport.send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    set_timer = (fun ~node ~delay f -> set_timer t ~node ~delay f);
    now = Unix.gettimeofday;
  }

let unlisten t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep ->
     Atomic.set ep.stopped true;
     Mutex.protect t.mu (fun () -> Hashtbl.remove t.eps node)
   | None -> ());
  (* drop our cached route so a later listener on the same node gets a
     fresh connection instead of frames sunk into the dead endpoint *)
  drop_conn t node;
  try Unix.unlink (path t node) with Unix.Unix_error _ -> ()

let crash t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep ->
     Atomic.set ep.stopped true;
     Metrics.incr t.c.crashes
   | None -> ());
  drop_conn t node

let shutdown t =
  Atomic.set t.closed true;
  let eps = Mutex.protect t.mu (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.eps []) in
  List.iter (fun ep -> Atomic.set ep.stopped true) eps;
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      Hashtbl.reset t.conns);
  let rec drain () =
    match
      Mutex.protect t.mu (fun () ->
          match t.threads with
          | [] -> None
          | th :: rest ->
            t.threads <- rest;
            Some th)
    with
    | Some th ->
      Thread.join th;
      drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun ep -> try Unix.unlink (path t ep.node) with Unix.Unix_error _ -> ())
    eps
