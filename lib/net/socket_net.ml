type endpoint = {
  node : int;
  lfd : Unix.file_descr;
  hmu : Mutex.t;  (* serializes handler + timer callbacks for the node *)
  handler : src:int -> Wire.msg -> unit;
  mutable stopped : bool;
}

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (* serializes frame writes *)
}

type t = {
  dir : string;
  mu : Mutex.t;  (* guards the tables and thread list *)
  eps : (int, endpoint) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;  (* outbound, keyed by destination *)
  mutable threads : Thread.t list;
  mutable closed : bool;
}

let poll_period = 0.05
let max_frame = 16 * 1024 * 1024

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d =
      Filename.concat base
        (Fmt.str "bloomnet-%d-%d" (Unix.getpid ()) (n + Random.bits ()))
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 0

let create ?dir () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let dir =
    match dir with
    | Some d ->
      (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
    | None -> fresh_dir ()
  in
  {
    dir;
    mu = Mutex.create ();
    eps = Hashtbl.create 8;
    conns = Hashtbl.create 8;
    threads = [];
    closed = false;
  }

let dir t = t.dir
let path t node = Filename.concat t.dir (Fmt.str "n%d.sock" node)

let add_thread t th = Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)

(* Read exactly [len] bytes, polling so the thread notices [stopped]
   without relying on close() interrupting a blocked read. *)
let read_exact ep fd buf len =
  let got = ref 0 in
  let ok = ref true in
  (try
     while !ok && !got < len do
       if ep.stopped then ok := false
       else begin
         match Unix.select [ fd ] [] [] poll_period with
         | [], _, _ -> ()
         | _ ->
           (match Unix.read fd buf !got (len - !got) with
            | 0 -> ok := false
            | k -> got := !got + k)
       end
     done
   with Unix.Unix_error _ | Sys_error _ -> ok := false);
  !ok

let recv_loop t ep cfd =
  let hdr = Bytes.create Wire.header_size in
  let continue = ref true in
  while !continue do
    if not (read_exact ep cfd hdr Wire.header_size) then continue := false
    else begin
      let len, src = Wire.parse_header hdr in
      if len < 0 || len > max_frame then continue := false
      else begin
        let body = Bytes.create len in
        if not (read_exact ep cfd body len) then continue := false
        else
          match Wire.decode (Bytes.to_string body) with
          | Error _ -> continue := false
          | Ok msg ->
            Mutex.protect ep.hmu (fun () ->
                if not ep.stopped then ep.handler ~src msg)
      end
    end
  done;
  ignore t;
  try Unix.close cfd with Unix.Unix_error _ -> ()

let accept_loop t ep =
  let continue = ref true in
  while !continue do
    if ep.stopped then continue := false
    else
      match Unix.select [ ep.lfd ] [] [] poll_period with
      | [], _, _ -> ()
      | _ ->
        (match Unix.accept ep.lfd with
         | cfd, _ -> add_thread t (Thread.create (fun () -> recv_loop t ep cfd) ())
         | exception Unix.Unix_error _ -> continue := false)
  done;
  try Unix.close ep.lfd with Unix.Unix_error _ -> ()

let listen t node handler =
  let p = path t node in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX p);
  Unix.listen lfd 64;
  let ep = { node; lfd; hmu = Mutex.create (); handler; stopped = false } in
  Mutex.protect t.mu (fun () -> Hashtbl.replace t.eps node ep);
  add_thread t (Thread.create (fun () -> accept_loop t ep) ())

let drop_conn t dst =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.conns dst with
      | Some c ->
        Hashtbl.remove t.conns dst;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())
      | None -> ())

let get_conn t dst =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.conns dst with
      | Some c -> Some c
      | None ->
        (match
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_UNIX (path t dst))
            with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
           fd
         with
         | fd ->
           let c = { fd; wmu = Mutex.create () } in
           Hashtbl.replace t.conns dst c;
           Some c
         | exception (Unix.Unix_error _ | Sys_error _) -> None))

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let send t ~src ~dst msg =
  let frame = Wire.frame ~src msg in
  let write_to c = Mutex.protect c.wmu (fun () -> write_all c.fd frame) in
  match get_conn t dst with
  | None -> ()  (* dead or absent peer: the link is lossy by contract *)
  | Some c ->
    (try write_to c
     with Unix.Unix_error _ | Sys_error _ ->
       (* the peer may have restarted behind our cached connection
          (e.g. a client re-run with the same processor id): retry once
          on a fresh connection before giving the frame up as lost *)
       drop_conn t dst;
       (match get_conn t dst with
        | None -> ()
        | Some c ->
          (try write_to c
           with Unix.Unix_error _ | Sys_error _ -> drop_conn t dst)))

let set_timer t ~node ~delay f =
  add_thread t
    (Thread.create
       (fun () ->
         Thread.delay delay;
         let ep = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) in
         match ep with
         | Some ep ->
           Mutex.protect ep.hmu (fun () -> if not ep.stopped then f ())
         | None -> if not t.closed then f ())
       ())

let transport t =
  {
    Transport.send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    set_timer = (fun ~node ~delay f -> set_timer t ~node ~delay f);
    now = Unix.gettimeofday;
  }

let unlisten t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep ->
     ep.stopped <- true;
     Mutex.protect t.mu (fun () -> Hashtbl.remove t.eps node)
   | None -> ());
  (* drop our cached route so a later listener on the same node gets a
     fresh connection instead of frames sunk into the dead endpoint *)
  drop_conn t node;
  try Unix.unlink (path t node) with Unix.Unix_error _ -> ()

let crash t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep -> ep.stopped <- true
   | None -> ());
  drop_conn t node

let shutdown t =
  t.closed <- true;
  let eps = Mutex.protect t.mu (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.eps []) in
  List.iter (fun ep -> ep.stopped <- true) eps;
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      Hashtbl.reset t.conns);
  let rec drain () =
    match
      Mutex.protect t.mu (fun () ->
          match t.threads with
          | [] -> None
          | th :: rest ->
            t.threads <- rest;
            Some th)
    with
    | Some th ->
      Thread.join th;
      drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun ep -> try Unix.unlink (path t ep.node) with Unix.Unix_error _ -> ())
    eps
