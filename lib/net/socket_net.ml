(* Unix-domain socket transport with two runtimes.

   [Epoll] (the default): non-blocking sockets driven by one or more
   {!Event_loop}s.  Each endpoint (listening node) is pinned to one
   loop; its accepts, reads, handler invocations and timer callbacks
   all run on that loop's thread, which is what serializes a node's
   handlers — no per-node lock on the hot path.  Outbound connections
   write inline from the sending thread and fall back to a per-
   connection pending queue drained on writability when the kernel
   buffer fills (EAGAIN), so a slow peer never blocks a sender.

   [Threads]: the legacy thread-per-connection runtime (blocking
   sockets, per-node handler mutex, one thread per timer), kept for
   comparison benchmarks and as a fallback — select [--loop threads]
   in bin/service.

   Both runtimes share the connection table, the lossy-send contract
   (drop rather than stall), the retry-once-on-fresh-connection
   discipline, and the timer incarnation guard: a timer captures its
   node's endpoint at arm time and fires only if that very endpoint
   value (physical equality) is still registered and not stopped. *)

type runtime = Threads | Epoll

type endpoint = {
  node : int;
  lfd : Unix.file_descr;
  hmu : Mutex.t;  (* Threads runtime: serializes handler + timers *)
  handler : src:int -> Wire.msg -> unit;
  stopped : bool Atomic.t;
  mutable lclosed : bool;  (* [lfd] closed; guarded by [t.mu] *)
  ep_loop : Event_loop.t option;  (* Epoll runtime: the owning loop *)
  mutable rconns : rconn list;  (* Epoll runtime; guarded by [t.mu] *)
}

(* One accepted inbound connection (Epoll runtime): a non-blocking fd
   plus its frame-reassembly buffer.  Only the owning loop thread
   touches [rbuf]/[rlen]; [rclosed] transitions under [t.mu]. *)
and rconn = {
  rfd : Unix.file_descr;
  rep : endpoint;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable rclosed : bool;
}

(* Outbound connection.  [wmu] serializes writers in both runtimes; in
   the Epoll runtime it also guards the pending-output queue shared
   with the drain callback on [wloop]. *)
type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  outq : (Bytes.t * int ref) Queue.t;  (* (frame, bytes already sent) *)
  mutable outq_bytes : int;
  mutable warmed : bool;  (* writability callback armed *)
  wloop : Event_loop.t option;
  mutable dead : bool;
}

(* Counters and histograms interned once at [create]; hot paths touch
   only the resolved handles. *)
type ctrs = {
  frames_sent : Metrics.counter;
  frames_delivered : Metrics.counter;
  frames_dropped : Metrics.counter;
  frames_retried : Metrics.counter;
  frames_oversized : Metrics.counter;
  decode_errors : Metrics.counter;
  conn_opened : Metrics.counter;
  conn_closed : Metrics.counter;
  conn_failed : Metrics.counter;
  conn_stall : Metrics.counter;
  write_queued : Metrics.counter;
  timer_fires : Metrics.counter;
  timers_dropped : Metrics.counter;
  crashes : Metrics.counter;
  handler_service : Metrics.histogram;
}

(* Reusable read-buffer freelist: every inbound connection borrows one
   [chunk]-sized buffer; buffers grown past [chunk] (oversized frames)
   are not returned, so the pool cannot hoard. *)
module Bufpool = struct
  let chunk = 64 * 1024
  let max_free = 64

  type t = { mu : Mutex.t; mutable free : Bytes.t list; mutable nfree : int }

  let create () = { mu = Mutex.create (); free = []; nfree = 0 }

  let take p =
    Mutex.protect p.mu (fun () ->
        match p.free with
        | b :: rest ->
          p.free <- rest;
          p.nfree <- p.nfree - 1;
          Some b
        | [] -> None)
    |> function
    | Some b -> b
    | None -> Bytes.create chunk

  let give p b =
    if Bytes.length b = chunk then
      Mutex.protect p.mu (fun () ->
          if p.nfree < max_free then begin
            p.free <- b :: p.free;
            p.nfree <- p.nfree + 1
          end)
end

type t = {
  dir : string;
  runtime : runtime;
  loops : Event_loop.t array;  (* [||] in the Threads runtime *)
  mutable loop_threads : Thread.t list;
  mu : Mutex.t;  (* guards the tables, [rconns] lists and thread list *)
  eps : (int, endpoint) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;  (* outbound, keyed by destination *)
  mutable threads : Thread.t list;
  mutable next_loop : int;  (* round-robin endpoint → loop assignment *)
  sndbuf : int option;
  pool : Bufpool.t;
  closed : bool Atomic.t;
  metrics : Metrics.t;
  trace : Trace.t option;
  c : ctrs;
}

let poll_period = 0.05
let max_frame = Wire.max_frame
let connect_timeout = 1.0

(* Cap on bytes queued behind one stalled connection before further
   frames to it are counted drops: the transport is lossy by contract,
   and unbounded queues would just turn backpressure into memory. *)
let out_cap = 8 * 1024 * 1024

(* Per-readability-callback read budget, so one firehose peer cannot
   starve the other connections sharing its loop. *)
let read_budget = 256 * 1024

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d =
      Filename.concat base
        (Fmt.str "bloomnet-%d-%d" (Unix.getpid ()) (n + Random.bits ()))
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 0

let create ?(runtime = Epoll) ?(loops = 1) ?dir ?sndbuf ?metrics ?trace () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let dir =
    match dir with
    | Some d ->
      (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
    | None -> fresh_dir ()
  in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let c =
    {
      frames_sent = Metrics.counter metrics "frames_sent";
      frames_delivered = Metrics.counter metrics "frames_delivered";
      frames_dropped = Metrics.counter metrics "frames_dropped";
      frames_retried = Metrics.counter metrics "frames_retried";
      frames_oversized = Metrics.counter metrics "frames_oversized";
      decode_errors = Metrics.counter metrics "decode_errors";
      conn_opened = Metrics.counter metrics "conn_opened";
      conn_closed = Metrics.counter metrics "conn_closed";
      conn_failed = Metrics.counter metrics "conn_failed";
      conn_stall = Metrics.counter metrics "conn_stall";
      write_queued = Metrics.counter metrics "write_queued";
      timer_fires = Metrics.counter metrics "timer_fires";
      timers_dropped = Metrics.counter metrics "timers_dropped";
      crashes = Metrics.counter metrics "crashes";
      handler_service = Metrics.histogram metrics "handler_service";
    }
  in
  let loop_arr =
    match runtime with
    | Threads -> [||]
    | Epoll -> Array.init (max 1 loops) (fun _ -> Event_loop.create ())
  in
  let t =
    {
      dir;
      runtime;
      loops = loop_arr;
      loop_threads = [];
      mu = Mutex.create ();
      eps = Hashtbl.create 8;
      conns = Hashtbl.create 8;
      threads = [];
      next_loop = 0;
      sndbuf;
      pool = Bufpool.create ();
      closed = Atomic.make false;
      metrics;
      trace;
      c;
    }
  in
  t.loop_threads <-
    Array.to_list (Array.map (fun l -> Thread.create Event_loop.run l) loop_arr);
  t

let dir t = t.dir
let metrics t = t.metrics
let runtime t = t.runtime
let path t node = Filename.concat t.dir (Fmt.str "n%d.sock" node)

(* [mk] is forced only when tracing is on: the event payloads
   pretty-print whole messages (a Batch formats every sub-message),
   which must cost nothing on the untraced hot path. *)
let trace_ev t mk =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr ~time:(Unix.gettimeofday ()) (mk ())

let add_thread t th = Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)

let le32 b off = Int32.to_int (Bytes.get_int32_le b off)

(* ------------------------------------------------------------------ *)
(* Epoll runtime: inbound path                                         *)

let close_rconn t rc =
  let doit =
    Mutex.protect t.mu (fun () ->
        if rc.rclosed then false
        else begin
          rc.rclosed <- true;
          rc.rep.rconns <- List.filter (fun o -> o != rc) rc.rep.rconns;
          true
        end)
  in
  if doit then begin
    (match rc.rep.ep_loop with
     | Some l -> Event_loop.remove_fd l rc.rfd
     | None -> ());
    (try Unix.close rc.rfd with Unix.Unix_error _ -> ());
    Bufpool.give t.pool rc.rbuf
  end

let deliver t rc ~src msg =
  let ep = rc.rep in
  trace_ev t (fun () ->
      Trace.Deliver { src; dst = ep.node; info = Fmt.str "%a" Wire.pp msg });
  if not (Atomic.get ep.stopped) then begin
    let t0 = Unix.gettimeofday () in
    ep.handler ~src msg;
    Metrics.observe t.c.handler_service (Unix.gettimeofday () -. t0)
  end

(* Peel every complete frame out of the reassembly buffer; the body is
   copied exactly once (buffer → decode string).  A partial frame that
   cannot fit in the remaining capacity compacts (and if needed grows)
   the buffer so the read loop always has room to make progress.

   Consecutive frames from the same source that surface in one parse
   turn are handed to the handler as a single [Wire.Batch]: one
   readiness event then costs one handler turn, and a receiver that
   coalesces its replies per turn (replicas, corked server cores)
   answers a whole read burst with one frame per destination instead
   of one per inbound frame.  With several worker domains multiplying
   the quorum frame count this is what keeps the syscall budget flat. *)
let parse_frames t rc =
  let pend_rev = ref [] (* decoded msgs of the current turn, newest first *)
  and pend_n = ref 0
  and pend_src = ref min_int in
  let flush_turn () =
    (match !pend_rev with
     | [] -> ()
     | [ m ] -> deliver t rc ~src:!pend_src m
     | ms -> deliver t rc ~src:!pend_src (Wire.Batch (List.rev ms)));
    pend_rev := [];
    pend_n := 0
  in
  let off = ref 0 in
  let continue = ref true in
  while !continue && not rc.rclosed do
    let avail = rc.rlen - !off in
    if avail < Wire.header_size then continue := false
    else begin
      let blen = le32 rc.rbuf !off in
      if blen < 0 || blen > max_frame then begin
        (* corrupt length: the stream can no longer be trusted *)
        Metrics.incr t.c.decode_errors;
        flush_turn ();
        close_rconn t rc
      end
      else if avail < Wire.header_size + blen then begin
        let needed = Wire.header_size + blen in
        if Bytes.length rc.rbuf - !off < needed then begin
          Bytes.blit rc.rbuf !off rc.rbuf 0 avail;
          rc.rlen <- avail;
          off := 0;
          if Bytes.length rc.rbuf < needed then begin
            let nb = Bytes.create needed in
            Bytes.blit rc.rbuf 0 nb 0 rc.rlen;
            rc.rbuf <- nb
          end
        end;
        continue := false
      end
      else begin
        let src = le32 rc.rbuf (!off + 4) in
        let body =
          Bytes.sub_string rc.rbuf (!off + Wire.header_size) blen
        in
        off := !off + Wire.header_size + blen;
        match Wire.decode body with
        | Error _ ->
          Metrics.incr t.c.decode_errors;
          flush_turn ();
          close_rconn t rc
        | Ok msg ->
          Metrics.incr t.c.frames_delivered;
          if src <> !pend_src then flush_turn ();
          pend_src := src;
          pend_rev := msg :: !pend_rev;
          incr pend_n;
          (* keep turn batches well under the wire batch cap, and the
             latency of the first op in a burst bounded *)
          if !pend_n >= 1024 then flush_turn ()
      end
    end
  done;
  flush_turn ();
  if (not rc.rclosed) && !off > 0 then begin
    let rest = rc.rlen - !off in
    if rest > 0 then Bytes.blit rc.rbuf !off rc.rbuf 0 rest;
    rc.rlen <- rest
  end

let on_readable t rc () =
  let budget = ref read_budget in
  let continue = ref true in
  while !continue && not rc.rclosed do
    if rc.rlen = Bytes.length rc.rbuf then begin
      (* full buffer with no complete frame: mid-frame — grow *)
      let nb = Bytes.create (2 * Bytes.length rc.rbuf) in
      Bytes.blit rc.rbuf 0 nb 0 rc.rlen;
      rc.rbuf <- nb
    end;
    match
      Unix.read rc.rfd rc.rbuf rc.rlen (Bytes.length rc.rbuf - rc.rlen)
    with
    | 0 ->
      close_rconn t rc;
      continue := false
    | n ->
      rc.rlen <- rc.rlen + n;
      budget := !budget - n;
      parse_frames t rc;
      if !budget <= 0 then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
      close_rconn t rc;
      continue := false
  done

let on_acceptable t ep loop () =
  let continue = ref true in
  while !continue do
    match Unix.accept ep.lfd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      let rc =
        { rfd = cfd; rep = ep; rbuf = Bufpool.take t.pool; rlen = 0;
          rclosed = false }
      in
      let stopped =
        Mutex.protect t.mu (fun () ->
            if Atomic.get ep.stopped then true
            else begin
              ep.rconns <- rc :: ep.rconns;
              false
            end)
      in
      if stopped then (try Unix.close cfd with Unix.Unix_error _ -> ())
      else Event_loop.add_read loop cfd (fun () -> on_readable t rc ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Threads runtime: inbound path (legacy)                              *)

(* Read exactly [len] bytes, polling so the thread notices [stopped]
   without relying on close() interrupting a blocked read.  EINTR from
   select/read is a signal, not a peer failure — retrying (the loop
   re-runs the select) must not tear the connection down, or a stray
   SIGCHLD would drop well-formed frames mid-read. *)
let read_exact ep fd buf len =
  let got = ref 0 in
  let ok = ref true in
  (try
     while !ok && !got < len do
       if Atomic.get ep.stopped then ok := false
       else begin
         match Unix.select [ fd ] [] [] poll_period with
         | [], _, _ -> ()
         | _ ->
           (match Unix.read fd buf !got (len - !got) with
            | 0 -> ok := false
            | k -> got := !got + k
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       end
     done
   with Unix.Unix_error _ | Sys_error _ -> ok := false);
  !ok

let recv_loop t ep cfd =
  let hdr = Bytes.create Wire.header_size in
  let continue = ref true in
  while !continue do
    if not (read_exact ep cfd hdr Wire.header_size) then continue := false
    else begin
      let len, src = Wire.parse_header hdr in
      if len < 0 || len > max_frame then continue := false
      else begin
        let body = Bytes.create len in
        if not (read_exact ep cfd body len) then continue := false
        else
          match Wire.decode (Bytes.to_string body) with
          | Error _ ->
            (* a framing bug or corrupted stream: count it, then kill
               the connection — the stream can no longer be trusted *)
            Metrics.incr t.c.decode_errors;
            continue := false
          | Ok msg ->
            Metrics.incr t.c.frames_delivered;
            trace_ev t (fun () ->
                Trace.Deliver
                  { src; dst = ep.node; info = Fmt.str "%a" Wire.pp msg });
            Mutex.protect ep.hmu (fun () ->
                if not (Atomic.get ep.stopped) then begin
                  let t0 = Unix.gettimeofday () in
                  ep.handler ~src msg;
                  Metrics.observe t.c.handler_service
                    (Unix.gettimeofday () -. t0)
                end)
      end
    end
  done;
  try Unix.close cfd with Unix.Unix_error _ -> ()

let accept_loop t ep =
  let continue = ref true in
  while !continue do
    if Atomic.get ep.stopped then continue := false
    else
      match Unix.select [ ep.lfd ] [] [] poll_period with
      | [], _, _ -> ()
      | _ ->
        (match Unix.accept ep.lfd with
         | cfd, _ -> add_thread t (Thread.create (fun () -> recv_loop t ep cfd) ())
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error _ -> continue := false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close ep.lfd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Listen                                                              *)

let listen t node handler =
  let p = path t node in
  (try Unix.unlink p with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX p);
  Unix.listen lfd 64;
  match t.runtime with
  | Threads ->
    let ep =
      { node; lfd; hmu = Mutex.create (); handler;
        stopped = Atomic.make false; lclosed = false; ep_loop = None;
        rconns = [] }
    in
    Mutex.protect t.mu (fun () -> Hashtbl.replace t.eps node ep);
    add_thread t (Thread.create (fun () -> accept_loop t ep) ())
  | Epoll ->
    Unix.set_nonblock lfd;
    let loop =
      Mutex.protect t.mu (fun () ->
          let l = t.loops.(t.next_loop mod Array.length t.loops) in
          t.next_loop <- t.next_loop + 1;
          l)
    in
    let ep =
      { node; lfd; hmu = Mutex.create (); handler;
        stopped = Atomic.make false; lclosed = false; ep_loop = Some loop;
        rconns = [] }
    in
    Mutex.protect t.mu (fun () -> Hashtbl.replace t.eps node ep);
    Event_loop.add_read loop lfd (fun () -> on_acceptable t ep loop ())

(* ------------------------------------------------------------------ *)
(* Outbound connections                                                *)

let drop_conn t dst =
  match
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.conns dst with
        | Some c ->
          Hashtbl.remove t.conns dst;
          Metrics.incr t.c.conn_closed;
          Some c
        | None -> None)
  with
  | None -> ()
  | Some c ->
    Mutex.protect c.wmu (fun () -> c.dead <- true);
    (match c.wloop with
     | Some l -> Event_loop.remove_fd l c.fd
     | None -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* Connect without ever blocking the caller for long: the socket is
   non-blocking, and a connection that cannot complete within
   [connect_timeout] (or at all — on Unix-domain sockets a full
   listener backlog surfaces as EAGAIN) is abandoned and counted as a
   [conn_stall].  Crucially this runs with NO lock held. *)
let try_connect t dst =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* test hook: a tiny send buffer forces the short-write/EAGAIN path
     that production only hits under real congestion *)
  (match t.sndbuf with
   | Some n -> (try Unix.setsockopt_int fd Unix.SO_SNDBUF n
                with Unix.Unix_error _ -> ())
   | None -> ());
  let close_quietly () = try Unix.close fd with Unix.Unix_error _ -> () in
  let keep_nonblock () =
    match t.runtime with Threads -> Unix.clear_nonblock fd | Epoll -> ()
  in
  match
    Unix.set_nonblock fd;
    Unix.connect fd (Unix.ADDR_UNIX (path t dst))
  with
  | () ->
    keep_nonblock ();
    Some fd
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
    (* not the documented Unix-domain behaviour, but cheap to handle:
       wait (bounded) for the connect to resolve *)
    (match Unix.select [] [ fd ] [] connect_timeout with
     | _, [ _ ], _ ->
       (match Unix.getsockopt_error fd with
        | None ->
          keep_nonblock ();
          Some fd
        | Some _ ->
          close_quietly ();
          Metrics.incr t.c.conn_failed;
          None)
     | _ ->
       close_quietly ();
       Metrics.incr t.c.conn_stall;
       None
     | exception (Unix.Unix_error _ | Sys_error _) ->
       close_quietly ();
       Metrics.incr t.c.conn_failed;
       None)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* the peer exists but is not accepting (backlog full): dropping
       the frame beats stalling every sender behind this destination *)
    close_quietly ();
    Metrics.incr t.c.conn_stall;
    None
  | exception (Unix.Unix_error _ | Sys_error _) ->
    close_quietly ();
    Metrics.incr t.c.conn_failed;
    None

let get_conn t dst =
  match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.conns dst) with
  | Some c -> Some c
  | None ->
    (* connect OUTSIDE the table lock: a slow or unreachable peer must
       not stall sends to every other destination (the lock is only
       retaken to install the result, tolerating a racing winner) *)
    (match try_connect t dst with
     | None -> None
     | Some fd ->
       Mutex.protect t.mu (fun () ->
           match Hashtbl.find_opt t.conns dst with
           | Some winner ->
             (* another sender connected while we did; keep theirs *)
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Some winner
           | None ->
             let wloop =
               match t.runtime with
               | Threads -> None
               | Epoll -> Some t.loops.(dst mod Array.length t.loops)
             in
             let c =
               { fd; wmu = Mutex.create (); outq = Queue.create ();
                 outq_bytes = 0; warmed = false; wloop; dead = false }
             in
             Hashtbl.replace t.conns dst c;
             Metrics.incr t.c.conn_opened;
             Some c))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

(* Like Storage's write loop: EINTR means a signal landed mid-write,
   not that the peer failed — retry, or a stray signal tears a frame
   in half on the wire and the receiver counts a decode error.  EAGAIN
   (a non-blocking fd, or a blocking one on some kernels under memory
   pressure) waits for writability instead of hot-spinning — the
   uniform backpressure discipline of the Threads runtime. *)
let rec write_retry fd b off len =
  try Unix.write fd b off len with
  | Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd b off len
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (match Unix.select [] [ fd ] [] poll_period with
     | _ -> ()
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    write_retry fd b off len

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + write_retry fd b !sent (n - !sent)
  done

(* Non-blocking write attempt: bytes written, or [-1] on EAGAIN. *)
let rec write_nb fd b off len =
  match Unix.write fd b off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_nb fd b off len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> -1

(* Drain the pending queue on writability (loop thread, [wmu] held).
   Raises on a real write error — the caller tears the conn down. *)
let rec drain_locked c =
  match Queue.peek_opt c.outq with
  | None ->
    if c.warmed then begin
      (match c.wloop with
       | Some l -> Event_loop.set_write l c.fd None
       | None -> ());
      c.warmed <- false
    end
  | Some (b, off) ->
    let len = Bytes.length b - !off in
    (match write_nb c.fd b !off len with
     | -1 -> ()  (* still blocked: stay armed *)
     | n when n = len ->
       ignore (Queue.pop c.outq);
       c.outq_bytes <- c.outq_bytes - n;
       drain_locked c
     | n ->
       off := !off + n;
       c.outq_bytes <- c.outq_bytes - n)

let rec drain_cb t dst c () =
  let failed =
    Mutex.protect c.wmu (fun () ->
        if c.dead then false
        else
          try
            drain_locked c;
            false
          with Unix.Unix_error _ | Sys_error _ ->
            c.dead <- true;
            true)
  in
  if failed then begin
    (* forget the route (next send reconnects) and release the fd —
       we are on the owning loop thread, so closing here is safe *)
    Mutex.protect t.mu (fun () ->
        match Hashtbl.find_opt t.conns dst with
        | Some cur when cur == c ->
          Hashtbl.remove t.conns dst;
          Metrics.incr t.c.conn_closed
        | _ -> ());
    (match c.wloop with
     | Some l -> Event_loop.remove_fd l c.fd
     | None -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

and arm_write t dst c =
  (* [wmu] held *)
  if not c.warmed then begin
    c.warmed <- true;
    match c.wloop with
    | Some l -> Event_loop.set_write l c.fd (Some (drain_cb t dst c))
    | None -> ()
  end

(* One frame out on the Epoll runtime: inline non-blocking write when
   nothing is queued; on a short write the remainder is queued and the
   writability callback takes over.  The frame bytes are shared with
   the queue — never copied. *)
let epoll_conn_write t dst c frame =
  Mutex.protect c.wmu (fun () ->
      if c.dead then `Fail
      else begin
        let len = Bytes.length frame in
        if c.outq_bytes > 0 then
          if c.outq_bytes + len > out_cap then `Backpressure
          else begin
            Queue.add (frame, ref 0) c.outq;
            c.outq_bytes <- c.outq_bytes + len;
            `Ok
          end
        else begin
          let rec go off =
            if off >= len then `Ok
            else
              match write_nb c.fd frame off (len - off) with
              | -1 ->
                Queue.add (frame, ref off) c.outq;
                c.outq_bytes <- c.outq_bytes + (len - off);
                Metrics.incr t.c.write_queued;
                arm_write t dst c;
                `Ok
              | n -> go (off + n)
          in
          try go 0
          with Unix.Unix_error _ | Sys_error _ ->
            c.dead <- true;
            `Fail
        end
      end)

let conn_write t dst c frame =
  match t.runtime with
  | Epoll -> epoll_conn_write t dst c frame
  | Threads -> (
    try
      Mutex.protect c.wmu (fun () -> write_all c.fd frame);
      `Ok
    with Unix.Unix_error _ | Sys_error _ -> `Fail)

let send t ~src ~dst msg =
  match Wire.frame ~src msg with
  | exception Invalid_argument _ ->
    (* over [Wire.max_frame]: surfaced as a counted drop rather than a
       truncated header the receiver would choke on *)
    Metrics.incr t.c.frames_oversized;
    trace_ev t (fun () -> Trace.Drop { src; dst; reason = "oversized" })
  | frame ->
    Metrics.incr t.c.frames_sent;
    let dropped reason =
      Metrics.incr t.c.frames_dropped;
      trace_ev t (fun () -> Trace.Drop { src; dst; reason })
    in
    let sent () =
      trace_ev t (fun () ->
          Trace.Send { src; dst; info = Fmt.str "%a" Wire.pp msg })
    in
    (match get_conn t dst with
     | None -> dropped "no-conn"  (* dead or absent peer: lossy by contract *)
     | Some c ->
       (match conn_write t dst c frame with
        | `Ok -> sent ()
        | `Backpressure -> dropped "backpressure"
        | `Fail ->
          (* the peer may have restarted behind our cached connection
             (e.g. a client re-run with the same processor id): retry
             once on a fresh connection before giving the frame up *)
          drop_conn t dst;
          Metrics.incr t.c.frames_retried;
          (match get_conn t dst with
           | None -> dropped "no-conn"
           | Some c ->
             (match conn_write t dst c frame with
              | `Ok -> sent ()
              | `Backpressure -> dropped "backpressure"
              | `Fail ->
                drop_conn t dst;
                dropped "write-failed"))))

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)

(* The incarnation guard shared by both runtimes (the counterpart of
   Sim_run's [incarnations.(r) == rep] check): the endpoint value
   captured when the timer was armed must still be the registered one,
   and alive, at fire time — a node that was unlistened, crashed, or
   replaced by a re-listen between arm and fire can never observe the
   stale callback.  [armed = None] (the node was not registered at arm
   time) always drops: firing [f] would race it against a later
   listener's handlers. *)
let timer_fire t ~node ~armed f =
  match armed with
  | None -> Metrics.incr t.c.timers_dropped
  | Some aep ->
    let live =
      match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
      | Some cur -> cur == aep && not (Atomic.get aep.stopped)
      | None -> false
    in
    if live then begin
      Metrics.incr t.c.timer_fires;
      trace_ev t (fun () -> Trace.Timer_fire { node });
      f ()
    end
    else Metrics.incr t.c.timers_dropped

let set_timer t ~node ~delay f =
  let armed = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) in
  match t.runtime with
  | Epoll ->
    let loop =
      match armed with
      | Some { ep_loop = Some l; _ } -> l
      | Some { ep_loop = None; _ } | None -> t.loops.(0)
    in
    (* scheduled on the node's own loop: the callback is serialized
       with the node's handlers structurally *)
    Event_loop.after loop delay (fun () -> timer_fire t ~node ~armed f)
  | Threads ->
    add_thread t
      (Thread.create
         (fun () ->
           Thread.delay delay;
           match armed with
           | None -> Metrics.incr t.c.timers_dropped
           | Some aep ->
             Mutex.protect aep.hmu (fun () -> timer_fire t ~node ~armed f))
         ())

let transport t =
  {
    Transport.send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    set_timer = (fun ~node ~delay f -> set_timer t ~node ~delay f);
    now = Unix.gettimeofday;
  }

(* ------------------------------------------------------------------ *)
(* Teardown                                                            *)

let stop_endpoint t ep =
  Atomic.set ep.stopped true;
  match ep.ep_loop with
  | None -> ()  (* Threads runtime: accept/recv loops notice [stopped] *)
  | Some l ->
    let close_lfd =
      Mutex.protect t.mu (fun () ->
          if ep.lclosed then false
          else begin
            ep.lclosed <- true;
            true
          end)
    in
    if close_lfd then begin
      Event_loop.remove_fd l ep.lfd;
      try Unix.close ep.lfd with Unix.Unix_error _ -> ()
    end;
    let rcs = Mutex.protect t.mu (fun () -> ep.rconns) in
    List.iter (fun rc -> close_rconn t rc) rcs

let unlisten t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep ->
     Atomic.set ep.stopped true;
     Mutex.protect t.mu (fun () -> Hashtbl.remove t.eps node);
     stop_endpoint t ep
   | None -> ());
  (* drop our cached route so a later listener on the same node gets a
     fresh connection instead of frames sunk into the dead endpoint *)
  drop_conn t node;
  try Unix.unlink (path t node) with Unix.Unix_error _ -> ()

let crash t node =
  (match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.eps node) with
   | Some ep ->
     Metrics.incr t.c.crashes;
     stop_endpoint t ep
   | None -> ());
  drop_conn t node

let shutdown t =
  Atomic.set t.closed true;
  let eps =
    Mutex.protect t.mu (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.eps [])
  in
  List.iter (fun ep -> Atomic.set ep.stopped true) eps;
  (* stop the loops first so no callback races the closes below *)
  Array.iter Event_loop.stop t.loops;
  List.iter Thread.join t.loop_threads;
  t.loop_threads <- [];
  List.iter
    (fun ep ->
      match ep.ep_loop with
      | None -> ()
      | Some _ ->
        if not ep.lclosed then begin
          ep.lclosed <- true;
          try Unix.close ep.lfd with Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun rc ->
            if not rc.rclosed then begin
              rc.rclosed <- true;
              try Unix.close rc.rfd with Unix.Unix_error _ -> ()
            end)
          ep.rconns)
    eps;
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      Hashtbl.reset t.conns);
  let rec drain () =
    match
      Mutex.protect t.mu (fun () ->
          match t.threads with
          | [] -> None
          | th :: rest ->
            t.threads <- rest;
            Some th)
    with
    | Some th ->
      Thread.join th;
      drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun ep -> try Unix.unlink (path t ep.node) with Unix.Unix_error _ -> ())
    eps
