(* Per-shard worker domains around Server cores.  See the .mli for
   the routing and ownership story; the invariants that matter here:

   - a worker's core is touched only by its domain (plus read-only
     aggregate accessors on a quiescent pool);
   - Hello/Bye broadcast to every worker (session open/close is
     per-core state); requests point-route to the worker owning the
     op's key — cores run presequenced, so nobody else needs to see
     them — and quorum replies point-route to the owning worker;
   - each worker drains its queue in bursts under one cork so the
     whole burst's sends coalesce into per-destination batches. *)

type item = Msg of Transport.node * Wire.msg | Fn of (unit -> unit)

type worker = {
  core : Server.t;
  mu : Mutex.t;
  cv : Condition.t;
  q : item Queue.t;
  mutable stopping : bool;
  mutable dom : unit Domain.t option;
}

type t = {
  workers : worker array;
  map : Shard_map.t;
  nd : int;
  metrics : Metrics.t;
}

let push w item =
  Mutex.lock w.mu;
  Queue.add item w.q;
  Condition.signal w.cv;
  Mutex.unlock w.mu

let worker_loop w =
  let batch = Queue.create () in
  let running = ref true in
  while !running do
    Mutex.lock w.mu;
    while Queue.is_empty w.q && not w.stopping do
      Condition.wait w.cv w.mu
    done;
    Queue.transfer w.q batch;
    if Queue.is_empty batch && w.stopping then running := false;
    Mutex.unlock w.mu;
    if not (Queue.is_empty batch) then begin
      (* one cork over the whole burst: every reply and quorum message
         this drain produces leaves as one frame per destination *)
      Server.with_cork w.core (fun () ->
          Queue.iter
            (function
              | Msg (src, msg) -> Server.on_message w.core ~src msg
              | Fn f -> f ())
            batch);
      Queue.clear batch
    end
  done

let create ~transport ?audit ?resend_every ?engine ?read_quorum ?storage
    ?metrics ?trace ?map ?(cork = true) ?(domains = 1) ?torn_txn
    ?skip_dual_write ~me ~replicas ~init () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let map =
    match map with Some m -> m | None -> Shard_map.create ~shards:1 ()
  in
  let nd = max 1 domains in
  let storage = match storage with Some f -> f | None -> fun _ -> None in
  (* ONE multi-key coordinator shared by every core: a cross-domain
     batch is atomic because all its keys' cores lock through the same
     table, whichever domains own them *)
  let txns = Txn.create ?torn:torn_txn ?audit ~init () in
  (* two-bit replies are routed to workers by [lid mod domains]; during
     a migration the owner worker drives TWO engines (two lids) whose
     replies may hash to other workers, so reconfiguration is only
     sound for that engine on a single domain — see Reconfig *)
  let reconfig_enabled =
    match engine with
    | Some { Engine.kind = Engine.Twobit; _ } -> nd = 1
    | _ -> true
  in
  let make d =
    (* the core's timers must run on its own domain, not on the
       transport's timer thread: re-route each callback through the
       worker queue ([wref] ties the knot) *)
    let wref = ref None in
    let wt =
      {
        transport with
        Transport.set_timer =
          (fun ~node ~delay f ->
            transport.Transport.set_timer ~node ~delay (fun () ->
                match !wref with Some w -> push w (Fn f) | None -> f ()));
      }
    in
    (* ownership by the epoch-0 hash placement, NOT the live map: a
       migrated key must stay on the worker whose core ran (and audits)
       its history — that core's own registry routes it to the new
       shard's engine after cutover *)
    let owns key = Shard_map.base_shard_of_key map key mod nd = d in
    (* coordinator thunks must run on the owning domain, not on
       whichever domain committed the multi-key op: inject them
       through the worker queue like timer callbacks *)
    let post f = match !wref with Some w -> push w (Fn f) | None -> f () in
    let core =
      Server.create ~transport:wt ?audit ?resend_every ?engine ?read_quorum
        ?storage:(storage d) ~metrics ?trace ~map ~cork ~presequenced:true
        ~owns ~txns ~post ?skip_dual_write ~reconfig_enabled ~me ~replicas
        ~init ()
    in
    let w =
      { core; mu = Mutex.create (); cv = Condition.create ();
        q = Queue.create (); stopping = false; dom = None }
    in
    wref := Some w;
    w
  in
  let workers = Array.init nd make in
  Array.iter
    (fun w -> w.dom <- Some (Domain.spawn (fun () -> worker_loop w)))
    workers;
  { workers; map; nd; metrics }

let domains t = t.nd
let cores t = Array.map (fun w -> w.core) t.workers
let metrics t = t.metrics
let shards t = Shard_map.shards t.map
let engine_spec t = Server.engine_spec t.workers.(0).core
(* base placement on purpose: reply frames keep routing to the worker
   that owns the key even after that worker migrated it — see [owns] *)
let worker_of_key t key = Shard_map.base_shard_of_key t.map key mod t.nd

(* Partition one inbound frame into at most one enqueue per worker: a
   Batch of K messages costs K pushes (and K worker wake-ups) if
   forwarded item by item, but one re-wrapped Batch per worker if
   partitioned here — and the receiving core then runs the whole
   sub-batch under a single cork turn. *)
let dispatch t ~src msg =
  let buckets = Array.make t.nd [] in
  let one w m = buckets.(w) <- m :: buckets.(w) in
  let all m =
    for w = 0 to t.nd - 1 do
      one w m
    done
  in
  let rec go m =
    match m with
    | Wire.Batch msgs -> List.iter go msgs
    | Wire.Hello _ | Wire.Bye -> all m
    | Wire.Req { op = (Wire.Txn_k _ | Wire.Snap_k _) as op; _ } ->
      (* a multi-key op goes to the owner of EACH touched key — every
         one of them must queue it (phase 1 of the coordinator) — and
         each worker exactly once.  An op with no keys still routes to
         its routing-key owner, who rejects it. *)
      (match
         List.sort_uniq compare
           (List.map (worker_of_key t) (Server.keys_of_op op))
       with
       | [] -> one (worker_of_key t (Server.key_of_op op)) m
       | ws -> List.iter (fun w -> one w m) ws)
    | Wire.Req { op; _ } ->
      (* point-route by key owner: cores run presequenced (this thread
         preserves each session's arrival order), so no other worker
         needs to see the op at all *)
      one (worker_of_key t (Server.key_of_op op)) m
    | Wire.Query_reply { reg; _ } | Wire.Store_ack { reg; _ } ->
      if reg >= 0 then one (worker_of_key t (Shard_map.key_of_reg reg)) m
    | Wire.Ack2 { lid; _ } | Wire.Query2_reply { lid; _ } ->
      if lid >= 0 then one (lid mod t.nd) m
    | Wire.Stats_req _ -> one 0 m
    | Wire.Reconfig { key; _ } ->
      (* the migration runs entirely on the key's owner worker *)
      if key >= 0 then one (worker_of_key t key) m
    | Wire.Epoch_req _ ->
      (* workers' epochs advance independently; worker 0 answers as
         the pool's representative (a stale answer only costs the
         client a nack-and-retry) *)
      one 0 m
    | Wire.Resp _ | Wire.Resp_snap _ | Wire.Query _ | Wire.Store _
    | Wire.Stats_reply _ | Wire.Store2 _ | Wire.Query2 _ | Wire.Engine_hello _
    | Wire.Reconfig_ack _ | Wire.Epoch_reply _ -> ()
  in
  go msg;
  Array.iteri
    (fun w ms ->
      match List.rev ms with
      | [] -> ()
      | [ m ] -> push t.workers.(w) (Msg (src, m))
      | ms -> push t.workers.(w) (Msg (src, Wire.Batch ms)))
    buckets

let stop t =
  Array.iter
    (fun w ->
      Mutex.lock w.mu;
      w.stopping <- true;
      Condition.broadcast w.cv;
      Mutex.unlock w.mu)
    t.workers;
  Array.iter
    (fun w ->
      match w.dom with
      | Some d ->
        Domain.join d;
        w.dom <- None
      | None -> ())
    t.workers

let sum f t = Array.fold_left (fun acc w -> acc + f w.core) 0 t.workers
let ops_served t = sum Server.ops_served t
let rejected t = sum Server.rejected t

let violations t =
  Array.to_list t.workers
  |> List.concat_map (fun w -> Server.violations w.core)

let timed_keyed t =
  Array.to_list t.workers
  |> List.concat_map (fun w -> Server.timed_keyed_history w.core)
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)

let keyed_history t = List.map snd (timed_keyed t)
let history t = List.map (fun (_, (_, ev)) -> ev) (timed_keyed t)

let quorum_stats t =
  Array.fold_left
    (fun acc w -> Engine.add_stats acc (Server.quorum_stats w.core))
    Engine.zero_stats t.workers

(* the coordinator is shared: any core's view is the pool's view *)
let txns t = Server.txns t.workers.(0).core
let txn_violations t = Server.txn_violations t.workers.(0).core
