(** One-call harness: run a register workload over a simulated cluster
    under a seeded fault schedule, audit it live, and re-check the
    served history.

    Topology: [replicas] replica nodes ([0 .. r-1]), one server
    ({!Transport.server}), one client node per workload process
    ({!Transport.client}[ proc]).  Client/server links are made immune
    to drops and duplicates (they model a TCP-like session; delay
    jitter — and hence reordering, which the server's sequence-number
    buffering absorbs — still applies); replica links suffer the full
    fault schedule.

    The whole run is deterministic in [(seed, faults, workload,
    schedule)]: sweeping seeds and fault parameters model-checks the
    transport + quorum + server stack, which is exactly what
    [test/test_net.ml] does. *)

type outcome = {
  history : int Histories.Event.t list;  (** as recorded by the server *)
  timed : (float * int Histories.Event.t) list;
  monitor_violation : string option;
      (** live-audit verdict ([None] = no violation observed) *)
  fastcheck_ok : bool;
      (** post-hoc {!Histories.Fastcheck} verdict on the history
          (requires the workload's written values to be unique) *)
  completed : int;  (** operations that received a response *)
  expected : int;  (** operations in the workload *)
  steps : int;  (** simulator events processed *)
  virtual_span : float;  (** virtual time at quiescence *)
  latencies : (Histories.Event.proc * int Histories.Event.op * float) list;
      (** per completed operation, in virtual time units *)
  net : Sim_net.stats;
  quorum : Quorum.stats;
  metrics : Metrics.t;
      (** the cluster-wide metrics registry (transport counters, quorum
          phase histograms, server op latencies) — the one passed in,
          or a fresh instance if none was *)
}

val run :
  ?faults:Sim_net.faults ->
  ?replicas:int ->
  ?window:int ->
  ?crash_replica:(int * float) ->
  ?partition_replicas:float * float ->
  ?max_steps:int ->
  ?audit:bool ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  seed:int ->
  init:int ->
  processes:int Registers.Vm.process list ->
  unit ->
  outcome
(** [crash_replica (i, t)] crashes replica [i] at virtual time [t];
    [partition_replicas (t0, t1)] severs all replicas from the server
    during [[t0, t1)].  Defaults: reliable network, 3 replicas,
    pipelining window 4, audit on, [max_steps] 2_000_000.

    [metrics] and [trace] are shared by the transport and the server:
    the trace (virtual-time stamped) records sends, deliveries, drops,
    timer fires and every operation invoke/respond, and can be dumped
    with {!Trace.dump} and replayed through the checker with
    {!Trace.history_of_file}. *)

val pp_outcome : outcome Fmt.t
(** One-paragraph summary (completion, verdicts, network stats). *)
