(** One-call harness: run a register workload over a simulated cluster
    under a seeded fault schedule, audit it live, and re-check the
    served history.

    Topology: [replicas] replica nodes ([0 .. r-1]), one server
    ({!Transport.server}), one client node per workload process
    ({!Transport.client}[ proc]).  Client/server links are made immune
    to drops and duplicates (they model a TCP-like session; delay
    jitter — and hence reordering, which the server's sequence-number
    buffering absorbs — still applies); replica links suffer the full
    fault schedule.

    With [shards] > 1 the server hosts a sharded keyspace and each
    process round-robins its script over [keys] (default: one key per
    shard) distinct keys, so a pipelining window keeps several per-key
    engines busy at once; every key is audited independently.

    The whole run is deterministic in [(seed, faults, shards, workload,
    schedule)]: sweeping seeds and fault parameters model-checks the
    transport + quorum + server stack, which is exactly what
    [test/test_net.ml] does. *)

type outcome = {
  history : int Histories.Event.t list;  (** as recorded by the server *)
  timed : (float * int Histories.Event.t) list;
  monitor_violation : string option;
      (** first live-audit violation of any key ([None] = every
          per-key audit accepts) *)
  txn_violations : string list;
      (** torn-batch verdicts of the cross-key {!Txn} audit (empty =
          every committed snapshot observed an atomic cut) *)
  fastcheck_ok : bool;
      (** conjunction of the per-key post-hoc {!Histories.Fastcheck}
          verdicts (requires written values to be unique) *)
  key_fastcheck : (int * bool) list;
      (** post-hoc verdict per key, ascending key order *)
  key_violations : (int * string) list;
      (** rendered first live violation per offending key *)
  completed : int;  (** operations that received a response *)
  expected : int;  (** operations in the workload *)
  steps : int;  (** simulator events processed *)
  virtual_span : float;  (** virtual time at quiescence *)
  latencies : (Histories.Event.proc * int Histories.Event.op * float) list;
      (** per completed operation, in virtual time units *)
  net : Sim_net.stats;
  quorum : Engine.stats;  (** aggregated over every shard's engine *)
  metrics : Metrics.t;
      (** the cluster-wide metrics registry (transport counters, quorum
          phase histograms, server op latencies, per-shard counters) —
          the one passed in, or a fresh instance if none was *)
  epoch : int;
      (** configuration epoch at quiescence (advances by one per
          completed migration — see {!Reconfig}) *)
  reconfig_acked : bool option;
      (** verdict of the [?reconfig] request: [None] if no migration
          was requested (or its ack never arrived), [Some ok]
          otherwise *)
}

(** {2 Extended workloads}

    [xprocesses] generalizes the plain register scripts with the
    multi-key operations of this layer; a plain [processes] workload
    is the [Single]-only special case.  One multi-key op answers with
    a single reply but records one Invoke/Respond pair per touched
    key, so [expected]/[completed] weigh it by its key count. *)

type xop =
  | Single of int Histories.Event.op
      (** one register op, keyed [seq mod keys] like plain scripts *)
  | Keyed of int * int Histories.Event.op
      (** one register op on an explicitly named key — what a
          reconfiguration workload uses to hammer the migrating key *)
  | Txn_w of (int * int) list
      (** an atomic multi-key transaction ({!Wire.op.Txn_k}) *)
  | Snap of int list
      (** a consistent snapshot read ({!Wire.op.Snap_k}) *)

type xprocess = { xproc : Histories.Event.proc; xscript : xop list }

val run :
  ?faults:Sim_net.faults ->
  ?replicas:int ->
  ?window:int ->
  ?shards:int ->
  ?group_size:int ->
  ?keys:int ->
  ?engine:Engine.spec ->
  ?read_quorum:int ->
  ?durable:bool ->
  ?snapshot_every:int ->
  ?gc_bytes:int ->
  ?group_commit:Storage.commit_config ->
  ?crash_replica:(int * float) ->
  ?partition_replicas:float * float ->
  ?fates:(float * Harness.Failure.net_fate) list ->
  ?max_steps:int ->
  ?audit:bool ->
  ?xprocesses:xprocess list ->
  ?torn_txn:bool ->
  ?reconfig:int * int ->
  ?reconfig_at:float ->
  ?skip_dual_write:bool ->
  ?metrics:Metrics.t ->
  ?measure:(src:int -> dst:int -> Wire.msg -> unit) ->
  ?trace:Trace.t ->
  seed:int ->
  init:int ->
  processes:int Registers.Vm.process list ->
  unit ->
  outcome
(** [crash_replica (i, t)] crashes replica [i] at virtual time [t];
    [partition_replicas (t0, t1)] severs all replicas from the server
    during [[t0, t1)]; [fates] is the general form — a timed
    {!Harness.Failure.net_fate} schedule
    (crash/crash-amnesia/restart/partition/heal, e.g. from
    {!Harness.Failure.random_net_fates}) applied via {!Sim_net.at}.
    [engine] picks the replication protocol (default ABD; see
    {!Engine}).  Note the twobit engine's link layer does not survive
    amnesia fates — pair it with crash/restart only.  [read_quorum]
    deliberately weakens the ABD read phase (see {!Quorum.create}) —
    for explorer regression tests only.  [measure] observes every send
    the server, replicas and clients make (before fault injection —
    offered, not delivered, traffic), e.g. the bench's
    bytes-on-the-wire accounting.

    With [durable] (the default) each replica persists every accepted
    store to a private {!Storage.Disk} (WAL + snapshot every
    [snapshot_every] appends, default 32) before acking, and an
    amnesia restart recovers from it; with [durable:false] an amnesia
    restart comes back empty — the deliberate-bug hook of this layer,
    in the [?read_quorum] mould.  [group_commit] opens each replica
    disk store with a commit queue ({!Storage.commit_config}): store
    acks are emitted from batch durability completions, with a
    deterministic per-replica flush timer arming whenever a handler
    turn leaves entries pending ([flush_every] in virtual-time units;
    [0.] flushes at the end of each turn).  Acks and flushes are
    guarded so a crashed node or a stale (pre-amnesia) incarnation can
    neither speak nor write to the disk of its replacement.  Defaults: reliable network,
    3 replicas, pipelining window 4, 1 shard (the unsharded
    single-register service), audit on, [max_steps] 2_000_000.

    [gc_bytes] opens each replica store with the WAL-size GC frontier
    (see {!Storage.create}); [xprocesses] (default: derived from
    [processes]) runs an extended workload with multi-key transactions
    and snapshot reads, audited by the server's shared {!Txn}
    coordinator; [torn_txn] enables the coordinator's deliberate
    torn-batch bug hook, the [?read_quorum]-style target for
    {!Explore}'s regression tests.

    [group_size] restricts each shard to a rotating window of that
    many replicas (see {!Shard_map.group}) — with [group_size 1] and 2
    shards the two replica groups are disjoint, the sharpest
    reconfiguration topology.  [reconfig (key, to_shard)] registers a
    dedicated fault-immune control client ({!Transport.client}[ 99])
    that asks the server to migrate [key] onto [to_shard] (epoch 0):
    immediately at build time by default — under {!Explore} the
    request's delivery is then an ordinary schedulable event — or at
    virtual time [reconfig_at] via {!Sim_net.at}.  The ack's verdict
    and the final epoch land in the outcome.  [skip_dual_write] arms
    the reconfiguration coordinator's deliberate bug hook (see
    {!Reconfig.create}) — a write acked during the migration can then
    be lost at cutover, the violation this layer's explorer tests
    hunt.

    [metrics] and [trace] are shared by the transport and the server:
    the trace (virtual-time stamped) records sends, deliveries, drops,
    timer fires and every operation invoke/respond with its key, and
    can be dumped with {!Trace.dump} and replayed through the checker
    with {!Trace.keyed_history_of_file}. *)

(** {2 Controlled clusters}

    {!Explore} needs the same topology {!run} wires up — replicas,
    server, window-pipelining clients — but with the event loop driven
    externally ({!Sim_net.pending}/{!Sim_net.fire}) instead of by
    {!Sim_net.run}.  [build] constructs the cluster without running it;
    [collect] computes the {!outcome} from wherever the run got to. *)

type cluster = {
  net : Sim_net.t;
  server : Server.t;
  replica_nodes : int list;
  init : int;
  expected : int;  (** operations in the workload *)
  metrics : Metrics.t;
  durable : bool;
  disks : Storage.Disk.t array;
      (** one simulated disk per replica node ([[||]] when not
          durable) — tests reach in to install crash-point hooks and
          inspect WAL bytes *)
  replica_of : int -> Replica.t;
      (** current incarnation of a replica node (amnesia restarts swap
          incarnations) *)
  reconfig_ack : bool option ref;
      (** verdict of the [?reconfig] request's ack, once it arrives *)
}

val build :
  ?faults:Sim_net.faults ->
  ?replicas:int ->
  ?window:int ->
  ?shards:int ->
  ?group_size:int ->
  ?keys:int ->
  ?engine:Engine.spec ->
  ?read_quorum:int ->
  ?durable:bool ->
  ?snapshot_every:int ->
  ?gc_bytes:int ->
  ?group_commit:Storage.commit_config ->
  ?audit:bool ->
  ?xprocesses:xprocess list ->
  ?torn_txn:bool ->
  ?reconfig:int * int ->
  ?reconfig_at:float ->
  ?skip_dual_write:bool ->
  ?metrics:Metrics.t ->
  ?measure:(src:int -> dst:int -> Wire.msg -> unit) ->
  ?trace:Trace.t ->
  seed:int ->
  init:int ->
  processes:int Registers.Vm.process list ->
  unit ->
  cluster
(** Wire up the cluster and enqueue every client's opening batch; no
    event has fired yet.  Same defaults as {!run}. *)

val apply_fate : cluster -> Harness.Failure.net_fate -> unit
(** Apply one fate to the cluster's network immediately. *)

val schedule_fates :
  cluster -> (float * Harness.Failure.net_fate) list -> unit
(** Schedule a timed fate list via {!Sim_net.at}. *)

val collect : cluster -> steps:int -> outcome
(** Assemble the outcome from the cluster's current state; [steps] is
    reported verbatim.  Safe to call on a partially-run (stalled or
    explorer-truncated) cluster — per-key audits then cover the prefix
    history. *)

val fastcheck_by_key :
  init:int -> (int * int Histories.Event.t) list -> (int * bool) list
(** Post-hoc per-key verdicts of a keyed history: each key's
    subsequence checked independently with
    {!Histories.Fastcheck.check_unique} (unique written values
    required; pending operations are fine). *)

val pp_outcome : outcome Fmt.t
(** One-paragraph summary (completion, verdicts, network stats). *)
