(** One-call harness: run a register workload over a simulated cluster
    under a seeded fault schedule, audit it live, and re-check the
    served history.

    Topology: [replicas] replica nodes ([0 .. r-1]), one server
    ({!Transport.server}), one client node per workload process
    ({!Transport.client}[ proc]).  Client/server links are made immune
    to drops and duplicates (they model a TCP-like session; delay
    jitter — and hence reordering, which the server's sequence-number
    buffering absorbs — still applies); replica links suffer the full
    fault schedule.

    With [shards] > 1 the server hosts a sharded keyspace and each
    process round-robins its script over [keys] (default: one key per
    shard) distinct keys, so a pipelining window keeps several per-key
    engines busy at once; every key is audited independently.

    The whole run is deterministic in [(seed, faults, shards, workload,
    schedule)]: sweeping seeds and fault parameters model-checks the
    transport + quorum + server stack, which is exactly what
    [test/test_net.ml] does. *)

type outcome = {
  history : int Histories.Event.t list;  (** as recorded by the server *)
  timed : (float * int Histories.Event.t) list;
  monitor_violation : string option;
      (** first live-audit violation of any key ([None] = every
          per-key audit accepts) *)
  fastcheck_ok : bool;
      (** conjunction of the per-key post-hoc {!Histories.Fastcheck}
          verdicts (requires written values to be unique) *)
  key_fastcheck : (int * bool) list;
      (** post-hoc verdict per key, ascending key order *)
  key_violations : (int * string) list;
      (** rendered first live violation per offending key *)
  completed : int;  (** operations that received a response *)
  expected : int;  (** operations in the workload *)
  steps : int;  (** simulator events processed *)
  virtual_span : float;  (** virtual time at quiescence *)
  latencies : (Histories.Event.proc * int Histories.Event.op * float) list;
      (** per completed operation, in virtual time units *)
  net : Sim_net.stats;
  quorum : Quorum.stats;  (** aggregated over every shard's engine *)
  metrics : Metrics.t;
      (** the cluster-wide metrics registry (transport counters, quorum
          phase histograms, server op latencies, per-shard counters) —
          the one passed in, or a fresh instance if none was *)
}

val run :
  ?faults:Sim_net.faults ->
  ?replicas:int ->
  ?window:int ->
  ?shards:int ->
  ?keys:int ->
  ?crash_replica:(int * float) ->
  ?partition_replicas:float * float ->
  ?max_steps:int ->
  ?audit:bool ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  seed:int ->
  init:int ->
  processes:int Registers.Vm.process list ->
  unit ->
  outcome
(** [crash_replica (i, t)] crashes replica [i] at virtual time [t];
    [partition_replicas (t0, t1)] severs all replicas from the server
    during [[t0, t1)].  Defaults: reliable network, 3 replicas,
    pipelining window 4, 1 shard (the unsharded single-register
    service), audit on, [max_steps] 2_000_000.

    [metrics] and [trace] are shared by the transport and the server:
    the trace (virtual-time stamped) records sends, deliveries, drops,
    timer fires and every operation invoke/respond with its key, and
    can be dumped with {!Trace.dump} and replayed through the checker
    with {!Trace.keyed_history_of_file}. *)

val pp_outcome : outcome Fmt.t
(** One-paragraph summary (completion, verdicts, network stats). *)
