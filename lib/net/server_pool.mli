(** A multicore front-end: one {!Server} core per worker domain, one
    shared keyspace.

    The pool owns [domains] OCaml 5 [Domain]s, each running an
    ordinary {!Server} whose [owns] predicate selects the shards
    assigned to it ([shard mod domains] — the {!Shard_map} placement
    already spreads keys uniformly, so workers load-balance for free).
    {!dispatch} is the single entry point the transport handler calls:
    it routes each message to the worker(s) that need it through
    per-worker mutex-striped handoff queues, and every worker drains
    its queue in bursts under one {!Server.with_cork} section — a
    burst of same-shard operations from one client [Batch] frame
    becomes a single engine pass whose quorum fan-out leaves as one
    frame per replica, feeding a group-commit store at real batch
    depth.

    {b Routing.}  Session boundaries ([Hello]/[Bye]) go to {e every}
    worker — opening and closing a session is per-core state.
    Requests point-route to the single worker owning the op's key:
    {!dispatch} runs on one transport thread and preserves each
    session's arrival order, so the cores run with
    {!Server.create}[?presequenced] and never need the rest of the
    stream (sequence numbers skip over the ops other workers own).
    Quorum replies are point-routed by their register
    ([Query_reply]/[Store_ack]) or link id ([Ack2]/[Query2_reply]) to
    the owning worker; [Stats_req] is answered by worker 0 out of the
    shared metrics registry.  A [Batch] frame is partitioned into at
    most one (re-batched) enqueue per worker, so a K-message frame
    costs O(workers) queue handoffs, not O(K).

    {b Multi-key ops.}  A {!Wire.op.Txn_k} or {!Wire.op.Snap_k} is
    delivered to the owner of {e each} touched key (each worker once):
    every owning core queues it on its keys and reports them to the
    {e shared} {!Txn} coordinator, which serializes the whole batch
    against overlapping multi-key ops across all domains — the
    coordinator's thunks re-enter each core through its worker queue,
    so engine ops and responses still run on the owning domain.  The
    coordinator (the smallest key's owner) sends the single reply.

    {b Ownership and audits.}  Worker state never crosses domains:
    each worker has its own engines, sessions, monitors and (if
    configured) its own store.  The shared {!Metrics.t} is safe by
    construction (atomic counters, locked histograms).  The per-key
    monitors therefore audit exactly as in the single-core server —
    a key's whole history lives on one worker — and the pool-level
    accessors merge the per-worker views ({!keyed_history} by
    transport-clock time, {!violations} by concatenation).

    Aggregate accessors read worker state without stopping the pool;
    call them on a quiescent pool (workload drained, or after
    {!stop}) for exact numbers. *)

type t

val create :
  transport:Transport.t ->
  ?audit:bool ->
  ?resend_every:float ->
  ?engine:Engine.spec ->
  ?read_quorum:int ->
  ?storage:(int -> Storage.t option) ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?map:Shard_map.t ->
  ?cork:bool ->
  ?domains:int ->
  ?torn_txn:bool ->
  ?skip_dual_write:bool ->
  me:Transport.node ->
  replicas:Transport.node list ->
  init:int ->
  unit ->
  t
(** Build the cores and spawn the worker domains.  Parameters are
    {!Server.create}'s with three differences: [domains] (default 1)
    is the worker count; [cork] (default [true]) enables per-burst
    send coalescing in every core; [storage] maps a worker index to
    that worker's private store — stores must be {e per-domain} (the
    group-commit queue completes on the appending domain), so a
    durable pool persists under [dir/server-d<i>] and must be
    restarted with the same [domains] to recover every shard's
    timestamps.  Timer callbacks of each core are re-routed into its
    worker queue, so cores never execute on a transport thread.
    [torn_txn] enables the shared coordinator's deliberate torn-batch
    bug hook (see {!Txn.create}); [skip_dual_write] arms the
    reconfiguration coordinator's one (see {!Reconfig.create}).

    {b Reconfiguration.}  A {!Wire.msg.Reconfig} routes to the key's
    owner worker, which runs the whole migration on its own registry;
    ownership is by the {e epoch-0} hash placement
    ({!Shard_map.base_shard_of_key}), so a migrated key stays on the
    worker holding its monitor and its engines simply re-route it.
    Worker epochs advance independently; {!Wire.msg.Epoch_req} is
    answered by worker 0 (a stale answer costs one nack-and-retry).
    With the two-bit engine and [domains > 1] reconfiguration is
    disabled (every request nacked): two-bit replies route by
    [lid mod domains] and a migration's second engine would misroute —
    see {!Reconfig.create}. *)

val dispatch : t -> src:Transport.node -> Wire.msg -> unit
(** Feed one incoming frame (possibly a [Batch]).  Thread-safe; called
    from the transport's handler.  Enqueues and returns — execution
    happens on the worker domains. *)

val stop : t -> unit
(** Drain and join every worker domain.  In-flight bursts finish;
    idempotent. *)

val domains : t -> int
(** The worker count the pool was built with. *)

val cores : t -> Server.t array
(** The per-worker cores, index = worker — for tests. *)

val metrics : t -> Metrics.t
(** The shared metrics registry every core reports into. *)

val shards : t -> int
(** Shard count of the pool's {!Shard_map}. *)

val engine_spec : t -> Engine.spec
(** The engine spec every shard runs. *)

val ops_served : t -> int
(** Total operations answered, summed over workers. *)

val rejected : t -> int
(** Total operations refused without execution, summed over
    workers. *)

val violations : t -> (int * int Histories.Fastcheck.violation) list
(** First latched violation of each offending key across all workers.
    Empty iff every per-key audit accepts. *)

val keyed_history : t -> (int * int Histories.Event.t) list
(** The merged keyed history of every worker, ordered by
    transport-clock time — what the post-hoc per-key checker
    consumes. *)

val history : t -> int Histories.Event.t list
(** {!keyed_history} without the key tags. *)

val quorum_stats : t -> Engine.stats
(** Aggregate engine counters over every worker's shards. *)

val txns : t -> Txn.t
(** The multi-key coordinator shared by every core. *)

val txn_violations : t -> string list
(** Torn-batch verdicts of the shared coordinator's cross-key audit —
    empty iff every committed snapshot observed an atomic cut. *)
