(** A readiness-driven event loop with an epoll-shaped interface.

    One loop owns a set of file descriptors and a timer queue and runs
    on a single dedicated thread ({!run}); every callback — readability,
    writability, timer expiry, {!post}ed closure — executes on that
    thread, so state touched only from callbacks of one loop needs no
    locking.  That structural serialization is what {!Socket_net}'s
    epoll runtime builds its per-node handler discipline on.

    The portable backend is [Unix.select] (the OCaml standard library
    exposes neither [epoll] nor [poll]); the interface is deliberately
    epoll-shaped — registration-based, level-triggered readiness,
    writability armed only while there is pending output — so a real
    [epoll]/[kqueue] backend can slot in without touching callers.
    The fd sets this repo drives (a few dozen Unix-domain sockets per
    process) are far below [select]'s limits.

    All mutating operations ({!add_read}, {!set_write}, {!remove_fd},
    {!after}, {!post}, {!stop}) are thread-safe and may be called from
    any thread, including from callbacks running on the loop itself; a
    wakeup pipe nudges a sleeping [select] whenever the interest set,
    the timer queue or the post queue changes. *)

type t

val create : ?on_error:(exn -> unit) -> unit -> t
(** A fresh loop (not yet running).  Allocates the wakeup pipe.
    [on_error] (default: swallow) observes exceptions escaping a
    callback — one broken handler must not tear down the transport
    thread, so the loop catches, reports and keeps going. *)

val run : t -> unit
(** Run the loop on the calling thread until {!stop}: drain posted
    closures, fire due timers, [select] on the current interest set,
    dispatch ready callbacks.  Returns once stopped; at most one
    {!run} may be active per loop. *)

val stop : t -> unit
(** Ask the loop to exit; idempotent, callable from any thread (the
    wakeup pipe interrupts a sleeping [select]).  Closures already
    posted but not yet drained are discarded; registered fds are left
    open — the owner closes them after joining the loop thread. *)

val post : t -> (unit -> unit) -> unit
(** Enqueue a closure to run on the loop thread before the next
    [select].  The cross-thread submission primitive: transports use
    it to move fd teardown onto the loop, worker domains could use it
    to hand results back. *)

val in_loop : t -> bool
(** Whether the calling thread is the one inside {!run} — lets an
    operation run a cleanup inline when already on the loop instead of
    posting it. *)

val add_read : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register (or replace) the readability callback of a descriptor.
    Level-triggered: the callback keeps firing while the fd stays
    readable, so it must read to [EAGAIN] (or remove itself). *)

val set_write : t -> Unix.file_descr -> (unit -> unit) option -> unit
(** Arm ([Some cb]) or disarm ([None]) the writability callback of a
    descriptor.  Writability is near-permanent on a healthy socket, so
    keep it armed only while output is actually queued — the epoll
    discipline.  Disarming an unknown fd is a no-op. *)

val remove_fd : t -> Unix.file_descr -> unit
(** Forget both callbacks of a descriptor.  Does {e not} close it.
    Close a registered fd only from the loop thread (inline in a
    callback or via {!post}) after removing it, or a concurrent
    [select] may see a stale descriptor. *)

val after : t -> float -> (unit -> unit) -> unit
(** Schedule a one-shot timer [delay] seconds from now (non-negative;
    [0.] fires on the next iteration).  Timers are kept in a min-heap
    and fire on the loop thread in deadline order; a due timer fires
    before fd callbacks of the same iteration.  There is no cancel —
    layer guards (like {!Socket_net}'s endpoint-incarnation check) on
    top, which is also what a cancelling wrapper would do. *)

val fds : t -> int
(** Number of registered descriptors — observability for tests. *)

val pending_timers : t -> int
(** Number of armed timers — observability for tests. *)
