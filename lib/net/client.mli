(** Blocking client library for the socket-served keyspace.

    A client is itself a node: it listens on its own socket for
    responses and speaks {!Wire} to the server.  [read]/[write] (and
    their keyed forms [read_k]/[write_k]) are the synchronous
    one-at-a-time API; [run_script]/[run_keyed] are the pipelined hot
    path — they keep a window of requests in flight and top it up as
    responses arrive.

    Underneath, every request goes through a {e batcher}: operations
    are queued and shipped as a single [Batch] frame once [batch_max]
    of them have coalesced, when the caller is about to block in an
    await (nothing queued may outlive the caller's patience), or when
    the [flush_every] deadline expires (a background flusher thread
    bounds the latency a lone op can pay waiting for company).  With a
    window open, that turns the request stream into a few large frames
    per round trip instead of one syscall per op.

    One [t] must be driven by one thread at a time (the paper's
    input-correctness assumption: a processor is sequential); the
    response handler and the flusher run on their own threads, and the
    shared tables are mutex-protected. *)

type t

val connect :
  ?metrics:Metrics.t ->
  ?batch_max:int ->
  ?flush_every:float ->
  net:Socket_net.t ->
  server:Transport.node ->
  proc:int ->
  unit ->
  t
(** Listen on node {!Transport.client}[ proc] and open a session with
    the server, declaring this client to be processor [proc] (0 and 1
    are the two writer roles).

    [batch_max] (default 32, clamped to [1 .. ]{!Wire.max_batch})
    bounds how many queued requests coalesce into one [Batch] frame;
    [flush_every] (default 0.002 s) is the flusher deadline — pass 0 to
    disable the flusher thread entirely (flushes then happen only on
    full batches and before blocking awaits).

    [metrics] (default: the transport's own instance,
    {!Socket_net.metrics}[ net]) receives the [client_rtt] histogram —
    wall-clock seconds from each request's {e queueing} to its
    response, as observed from this side of the wire — and the
    [client_batches] counter of multi-op frames shipped. *)

val read : t -> int
(** Blocking atomic read of key 0 (the legacy single-register API).
    @raise Invalid_argument if the server rejects the read. *)

val write : t -> int -> unit
(** Blocking atomic write to key 0.
    @raise Invalid_argument if the server rejects the write (only
    processors 0 and 1 may write). *)

val read_k : t -> key:int -> int
(** Blocking atomic read of one key of the keyspace.  Keys are
    independent two-writer registers; the server routes by
    {!Shard_map.shard_of_key}.
    @raise Invalid_argument if the server rejects (negative key). *)

val write_k : t -> key:int -> int -> unit
(** Blocking atomic write to one key.
    @raise Invalid_argument if the server rejects the write (non-writer
    session or negative key). *)

val txn_k : t -> (int * int) list -> unit
(** Blocking atomic multi-key transaction: write every [(key, value)]
    pair all-or-nothing across shards and worker domains (see
    {!Wire.op.Txn_k}).  Acknowledged once every write has committed.
    @raise Invalid_argument if the server rejects (non-writer session,
    empty/duplicate/negative keys, or more than {!Wire.max_txn}), or
    if the client is already closed — a {!close} racing an in-flight
    prepare fails the transaction deterministically rather than
    leaving it half-queued. *)

val snap_k : t -> int list -> int list
(** Blocking consistent snapshot read: the returned values (in request
    order) form an atomic cut — for any committed {!txn_k} they
    contain either all of its writes or none (see {!Wire.op.Snap_k}).
    @raise Invalid_argument if the server rejects the snapshot or the
    client is already closed. *)

val run_script :
  ?window:int -> t -> int Histories.Event.op list -> int option list
(** Run a whole script against key 0 with up to [window] (default 8)
    requests in flight; returns the results in script order ([Some v]
    per read, [None] per write acknowledgment).  Blocks until every op
    has completed. *)

val run_keyed :
  ?window:int -> t -> (int * int Histories.Event.op) list -> int option list
(** [run_script] over keyed operations: each element names the key its
    op addresses.  Ops on distinct keys may execute concurrently
    server-side (per-key serialization only), which is what makes a
    windowed keyed script scale with the shard count. *)

val post : t -> Wire.op -> unit
(** Fire-and-forget: queue one operation through the batcher without
    awaiting its response (the result is discarded when it arrives).
    The op ships on the usual triggers — a full batch, the flusher
    deadline, a blocking await, or {!close}, which is guaranteed to
    carry every posted op out before the session's [Bye].
    @raise Invalid_argument if the client is already closed. *)

val stats : t -> (string * int) list
(** Flush the batcher, ask the server for a live {!Metrics.wire_stats}
    snapshot ([Stats_req]/[Stats_reply]) and block for the answer.
    Counters come back verbatim; histograms as [name_count],
    [name_p50_us] and [name_p99_us].  The server appends [sessions],
    [shards] and [audit_violation] (0/1). *)

val epoch : t -> int
(** Flush the batcher, ask the server which configuration epoch is
    current ([Epoch_req]/[Epoch_reply]) and block for the answer.
    Returns the newest epoch this client has heard of (the reply, or a
    later {!reshard} ack).  Epochs advance by one per completed
    migration — see {!Reconfig}. *)

val reshard : ?attempts:int -> t -> key:int -> to_shard:int -> int
(** Blocking live migration: ask the server to move [key] onto
    [to_shard] (and thereby that shard's replica group) while traffic
    continues, returning the new configuration epoch once the handoff
    has cut over.  The request carries the client's believed epoch; a
    stale-epoch nack adopts the server's answer and retries, a busy
    nack (another migration in flight) backs off briefly first — at
    most [attempts] (default 8) tries in total.
    @raise Invalid_argument on a negative key or shard, on a server
    that keeps refusing (e.g. reconfiguration disabled, or the shard
    out of range), or if the client is closed mid-wait. *)

val close : t -> unit
(** Close the session: atomically seal the batcher (later queue
    attempts raise) and detach any partially filled batch, send it,
    stop the flusher thread, and only then announce session end
    ([Bye]) and stop listening — so no queued op can be silently
    dropped by [Bye] overtaking its batch.  Any other thread blocked
    in an awaiting call ({!read_k}, {!txn_k}, {!snap_k}, ...) is woken
    and fails with [Invalid_argument] — its reply can never arrive
    once the endpoint is gone, so the seal fails it deterministically
    instead of leaving it parked forever.  Blocks for at most one
    [flush_every] period.  The node's socket is torn down by
    {!Socket_net.shutdown}. *)
