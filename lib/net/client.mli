(** Blocking client library for the socket-served register.

    A client is itself a node: it listens on its own socket for
    responses and speaks {!Wire} to the server.  [read]/[write] are
    the synchronous one-at-a-time API; [run_script] is the pipelined
    hot path — it opens a window of in-flight requests, ships the
    initial window as a single [Batch] frame, and tops the window up
    as responses arrive, which is where the throughput of the service
    comes from.

    One [t] must be driven by one thread at a time (the paper's
    input-correctness assumption: a processor is sequential). *)

type t

val connect :
  ?metrics:Metrics.t ->
  net:Socket_net.t ->
  server:Transport.node ->
  proc:int ->
  unit ->
  t
(** Listen on node {!Transport.client}[ proc] and open a session with
    the server, declaring this client to be processor [proc] (0 and 1
    are the two writer roles).

    [metrics] (default: the transport's own instance,
    {!Socket_net.metrics}[ net]) receives the [client_rtt] histogram:
    wall-clock seconds from each request transmission to its response,
    as observed from this side of the wire. *)

val read : t -> int
val write : t -> int -> unit
(** @raise Invalid_argument if the server rejects the write (only
    processors 0 and 1 may write). *)

val run_script :
  ?window:int -> t -> int Histories.Event.op list -> int option list
(** Run a whole script with up to [window] (default 8) requests in
    flight; returns the results in script order ([Some v] per read,
    [None] per write acknowledgment). *)

val stats : t -> (string * int) list
(** Ask the server for a live {!Metrics.wire_stats} snapshot
    ([Stats_req]/[Stats_reply]) and block for the answer.  Counters
    come back verbatim; histograms as [name_count], [name_p50_us] and
    [name_p99_us].  The server appends [sessions] and
    [audit_violation] (0/1). *)

val close : t -> unit
(** Announce session end ([Bye]).  The node's socket is torn down by
    {!Socket_net.shutdown}. *)
