type counter = { cname : string; cell : int Atomic.t }

type histogram = {
  hname : string;
  hmu : Mutex.t;
  res : Harness.Stats.Reservoir.t;
}

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
}

let create () =
  { mu = Mutex.create (); counters = Hashtbl.create 32; hists = Hashtbl.create 8 }

let counter t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.replace t.counters name c;
        c)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

(* Deterministic reservoir seed per name: metric output under the
   simulated transport stays a pure function of (seed, workload). *)
let histogram t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        let h =
          {
            hname = name;
            hmu = Mutex.create ();
            res = Harness.Stats.Reservoir.create ~seed:(Hashtbl.hash name) ();
          }
        in
        Hashtbl.replace t.hists name h;
        h)

let observe h x = Mutex.protect h.hmu (fun () -> Harness.Stats.Reservoir.add h.res x)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarise h =
  Mutex.protect h.hmu (fun () ->
      let n = Harness.Stats.Reservoir.count h.res in
      if n = 0 then
        { count = 0; mean = nan; p50 = nan; p90 = nan; p99 = nan; max = nan }
      else
        let s = Harness.Stats.Reservoir.samples h.res in
        {
          count = n;
          mean = Harness.Stats.Reservoir.mean h.res;
          p50 = Harness.Stats.percentile s 50.0;
          p90 = Harness.Stats.percentile s 90.0;
          p99 = Harness.Stats.percentile s 99.0;
          max = Harness.Stats.Reservoir.max_value h.res;
        })

let counters t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) t.counters [])
  |> List.sort compare

let histograms t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [])
  |> List.sort compare
  |> List.map (fun (name, h) -> (name, summarise h))

let get t name =
  match
    Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.counters name)
  with
  | Some c -> Atomic.get c.cell
  | None -> 0

let us x = if Float.is_finite x then int_of_float (x *. 1e6) else 0

let wire_stats t =
  counters t
  @ List.concat_map
      (fun (name, s) ->
        [
          (name ^ "_count", s.count);
          (name ^ "_p50_us", us s.p50);
          (name ^ "_p99_us", us s.p99);
        ])
      (histograms t)

let pp ppf t =
  let cs = counters t and hs = histograms t in
  Fmt.pf ppf "@[<v>counters:";
  List.iter (fun (n, v) -> Fmt.pf ppf "@,  %-24s %d" n v) cs;
  if hs <> [] then begin
    Fmt.pf ppf "@,histograms (transport clock units):";
    List.iter
      (fun (n, s) ->
        Fmt.pf ppf "@,  %-24s n=%-7d mean=%.6f p50=%.6f p99=%.6f max=%.6f" n
          s.count s.mean s.p50 s.p99 s.max)
      hs
  end;
  Fmt.pf ppf "@]"
