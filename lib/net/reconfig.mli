(** Live reconfiguration: the dual-quorum handoff that migrates a key
    to another shard — and thereby to that shard's replica group —
    while the server keeps serving the key.

    The {!Server} owns one coordinator and routes every keyed
    micro-operation through {!read}/{!write}; outside a migration
    those are exactly {!Registry.read}/{!Registry.write}.  A migration
    (started by {!start} on an accepted {!Wire.msg.Reconfig}) runs in
    phases, all on the server's single execution thread:

    + {e entry} — writes of the key go to {e both} the outgoing and
      the incoming group (same timestamp, acked only when both
      majorities ack); reads satisfy the stricter intersection of the
      two groups;
    + {e settle} — wait for every client op admitted before entry to
      finish, so pre-entry single-group writes are safely majority-
      acked before they are sampled;
    + {e sync} — copy each register's freshest (timestamp, value) from
      the outgoing group onto the incoming one, skipping registers
      with a dual write in flight;
    + {e drain} — park new admissions of the key ({!admitting} turns
      false; the server leaves them queued) until in-flight ops
      finish;
    + {e done} — install the advanced {!Shard_map} (epoch + 1), ack
      the requester, and unpark the key.

    Atomicity through the transition is audited externally (the
    per-key {!Monitor} inside the server) and verified exhaustively by
    {!Explore} over reconfig interleavings.

    Same threading contract as {!Registry}: not internally locked,
    drive from one transport handler; nothing here blocks. *)

type t

val create :
  registry:Registry.t -> ?enabled:bool -> ?skip_dual_write:bool -> unit -> t
(** A coordinator over [registry]'s engines and map.  At most one
    migration is in flight at a time; further {!start}s are nacked
    until it completes.

    [enabled] (default [true]): when [false] every {!start} is nacked
    — deployments whose reply routing cannot support a second engine
    per key (the twobit engine across multiple worker domains) set
    this.  [skip_dual_write] (default [false]) is the deliberate bug
    hook: the incoming-group leg of every dual write is dropped, so a
    write acked during a migration can be lost at cutover — the
    violation {!Explore} must catch, shrink and replay. *)

val set_unpark : t -> (int -> unit) -> unit
(** Install the server's unpark hook, called with the migrated key
    after cutover so ops parked during drain re-dispatch (now routed
    by the new map).  Default: ignore. *)

val epoch : t -> int
(** The current configuration epoch, i.e. [Shard_map.epoch] of the
    registry's live map. *)

val active : t -> bool
(** Whether a migration is in flight. *)

val migrating_key : t -> int option
(** The key under migration, if any. *)

val admitting : t -> int -> bool
(** Whether the server may dispatch a new client op on this key now.
    [false] exactly while the key is in the drain phase — the server
    must leave the op queued and re-try after the unpark hook runs. *)

val op_started : t -> key:int -> bool
(** Count a client op on [key] entering execution.  Returns the op's
    {e generation} token — [true] iff [key] is currently under
    migration — which must be handed back to {!op_finished}.  The
    pre-entry generation gates the settle phase, its successors gate
    drain. *)

val op_finished : t -> key:int -> gen:bool -> unit
(** Count a client op leaving execution (completed or rejected); [gen]
    is the token {!op_started} returned for it.  May advance the
    migration (settle/drain completions) and run its continuations —
    including the requester's ack and the unpark hook — reentrantly. *)

val start :
  t ->
  key:int ->
  to_shard:int ->
  epoch:int ->
  finish:(ok:bool -> epoch:int -> unit) ->
  unit
(** Begin migrating [key] to [to_shard].  [epoch] is the epoch the
    requester believes current: a mismatch is nacked with the real one
    (stale-epoch fencing), as are a busy coordinator, a disabled one,
    and an out-of-range key or shard.  [finish] runs exactly once —
    with the {e new} epoch on success, the current epoch on a nack;
    possibly before [start] returns (a nack, a same-shard request, or
    a fully quiescent key completes synchronously). *)

val read : t -> key:int -> reg:int -> k:(Wire.payload -> unit) -> unit
(** {!Registry.read}, or the intersection read while [key] migrates
    (ABD: both groups, max timestamp, write-back to the outgoing
    group; twobit: the outgoing group, whose FIFO links keep it
    current).  Continuation contract as {!Quorum.read}. *)

val write :
  t -> key:int -> reg:int -> value:Wire.payload -> k:(unit -> unit) -> unit
(** {!Registry.write}, or the dual-quorum write while [key] migrates:
    both groups store under one timestamp, and [k] runs only when both
    majorities have acked (single-group under the [skip_dual_write]
    bug hook).  Continuation contract as {!Quorum.write}. *)

val stats : t -> (string * int) list
(** Live counters for the server's stats surface: current epoch,
    migrations started/completed/nacked, dual writes, sync
    installs/skips, parked admissions. *)
