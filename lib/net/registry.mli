(** The server-side owner of the sharded keyspace.

    A registry holds one {!Quorum} engine per shard of its
    {!Shard_map}.  Each engine is the exclusive writer of the real
    registers of the keys its shard owns (the SWMR ownership the
    construction requires), talks to its shard's replica group, and
    keeps its own pending-phase table — so operations on different
    shards share nothing and proceed fully concurrently through the
    pipelined server.  All engines speak from the same transport node;
    incoming replies are routed to the owning engine by the global
    register index they carry, which is why overlapping request-id
    spaces across engines are harmless.

    Same threading contract as {!Quorum}: not internally locked, drive
    from one transport handler; nothing here blocks. *)

type t

val create :
  transport:Transport.t ->
  me:Transport.node ->
  replicas:Transport.node list ->
  map:Shard_map.t ->
  ?read_quorum:int ->
  ?storage:Storage.t ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** One engine per shard of [map], over
    {!Shard_map.group}[ map ~replicas s].  [read_quorum] is passed to
    every engine (see {!Quorum.create} — fault-injection hook, default
    majority).  [storage] is shared by every engine — safe because the
    shards partition the keyspace, so the engines' register sets are
    disjoint (see {!Quorum.create}); it makes issued write timestamps
    durable across a server restart.  [metrics] receives the shared quorum
    counters/histograms plus one [shard<i>_quorum_ops] counter per
    shard — the per-shard load (and skew) signal. *)

val map : t -> Shard_map.t
val shards : t -> int
val shard_of_key : t -> int -> int

val engine : t -> int -> Quorum.t
(** The shard's engine — for tests and stats.
    @raise Invalid_argument on an out-of-range shard. *)

val read : t -> key:int -> reg:int -> k:(Wire.payload -> unit) -> unit
(** Atomic read of register bit [reg] (the paper's Reg{_0}/Reg{_1}) of
    [key], routed to the owning shard's engine; continuation contract
    as {!Quorum.read}. *)

val write :
  t -> key:int -> reg:int -> value:Wire.payload -> k:(unit -> unit) -> unit

val on_message : t -> src:Transport.node -> Wire.msg -> unit
(** Route [Query_reply]/[Store_ack] (possibly batched) to the engine
    owning the register they name; everything else is ignored. *)

val resend_pending : ?older_than:float -> t -> bool
(** {!Quorum.resend_pending} on every engine; true if any engine still
    has phases outstanding. *)

val stats : t -> Quorum.stats
(** Aggregate of every engine's counters. *)
