(** The server-side owner of the sharded keyspace.

    A registry holds one replication engine per shard of its
    {!Shard_map}, all speaking the same protocol (the {!Engine.spec}
    chosen at creation — shards are engine-homogeneous).  Each engine
    is the exclusive writer of the real registers of the keys its
    shard owns (the SWMR ownership the construction requires), talks
    to its shard's replica group, and keeps its own pending table — so
    operations on different shards share nothing and proceed fully
    concurrently through the pipelined server.  All engines speak from
    the same transport node; incoming replies are routed to the owning
    engine by the request-id stripe they carry (ABD: engine [s] issues
    rids congruent to [s] modulo the shard count — see
    {!Quorum.create}) or by their link id, which is the shard index
    (two-bit).  Register-index routing would be ambiguous during a
    {!Reconfig} migration, when two engines hold pending phases for
    the same registers.

    Same threading contract as {!Quorum}: not internally locked, drive
    from one transport handler; nothing here blocks. *)

type t

val create :
  transport:Transport.t ->
  me:Transport.node ->
  replicas:Transport.node list ->
  map:Shard_map.t ->
  ?engine:Engine.spec ->
  ?read_quorum:int ->
  ?storage:Storage.t ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** One engine per shard of [map], over
    {!Shard_map.group}[ map ~replicas s], built by {!Engines.create}
    from [engine] (default {!Engine.default}, i.e. ABD).
    [read_quorum] overrides the spec's field of the same name — the
    ABD fault-injection hook (see {!Quorum.create}); combining it with
    the twobit engine is an error.  [storage] is shared by every
    engine — safe because the shards partition the keyspace, so the
    engines' register sets are disjoint; it makes issued write
    timestamps durable across a server restart.  A [group_commit]
    store batches the wts appends of {e all} shards into shared
    write+fsync rounds (each engine's store broadcast waits for its
    own timestamp's batch); whoever owns the transport loop must
    drive {!Storage.flush} — {!Server} does this for its own store.  [metrics] receives
    the engine counters/histograms plus one [shard<i>_quorum_ops]
    counter per shard — the per-shard load (and skew) signal.
    @raise Invalid_argument on a bug hook aimed at the wrong engine,
    an out-of-range [read_quorum], or a twobit shard count beyond
    {!Wire.max_lid}. *)

val map : t -> Shard_map.t
(** The current placement.  Mutable across epochs — see {!set_map}. *)

val set_map : t -> Shard_map.t -> unit
(** Install the next epoch's map: subsequent {!read}/{!write} calls
    route by it.  The {!Reconfig} coordinator calls this exactly at
    cutover, from the registry's driving thread.  The shard count is
    fixed at {!create} (engines are per-shard state).
    @raise Invalid_argument if the new map's shard count differs. *)

val shards : t -> int
val shard_of_key : t -> int -> int

val spec : t -> Engine.spec
(** The engine spec every shard runs. *)

val engine : t -> int -> Engine.instance
(** The shard's engine — for tests and stats.
    @raise Invalid_argument on an out-of-range shard. *)

val read : t -> key:int -> reg:int -> k:(Wire.payload -> unit) -> unit
(** Atomic read of register bit [reg] (the paper's Reg{_0}/Reg{_1}) of
    [key], routed to the owning shard's engine; continuation contract
    as {!Quorum.read}. *)

val write :
  t -> key:int -> reg:int -> value:Wire.payload -> k:(unit -> unit) -> unit

val on_message : t -> src:Transport.node -> Wire.msg -> unit
(** Route [Query_reply]/[Store_ack]/[Ack2]/[Query2_reply] (possibly
    batched) to the engine owning the register or link they name;
    everything else is ignored. *)

val resend_pending : ?older_than:float -> t -> bool
(** {!Engine.resend_pending} on every engine; true if any engine still
    has phases or link frames outstanding. *)

val stats : t -> Engine.stats
(** Aggregate of every engine's counters. *)
