module Tagged = Registers.Tagged

type payload = int Tagged.t

type op =
  | Read
  | Write of int
  | Read_k of { key : int }
  | Write_k of { key : int; value : int }
  | Txn_k of { writes : (int * int) list }
  | Snap_k of { keys : int list }

type msg =
  | Hello of { proc : int }
  | Req of { seq : int; op : op }
  | Resp of { seq : int; result : int option }
  | Query of { rid : int; reg : int }
  | Query_reply of { rid : int; reg : int; ts : int; pl : payload }
  | Store of { rid : int; reg : int; ts : int; pl : payload }
  | Store_ack of { rid : int; reg : int }
  | Batch of msg list
  | Bye
  | Stats_req of { rid : int }
  | Stats_reply of { rid : int; stats : (string * int) list }
  | Store2 of { lid : int; seq : int; reg : int; pl : payload }
  | Ack2 of { lid : int; seq : int }
  | Query2 of { lid : int; seq : int; reg : int }
  | Query2_reply of { lid : int; seq : int; pl : payload }
  | Engine_hello of { engine : int }
  | Resp_snap of { seq : int; values : int list }
  | Reconfig of { rid : int; key : int; to_shard : int; epoch : int }
  | Reconfig_ack of { rid : int; epoch : int; ok : bool }
  | Epoch_req of { rid : int }
  | Epoch_reply of { rid : int; epoch : int; shards : int }

let max_frame = 16 * 1024 * 1024
let max_batch_depth = 8
let max_batch = 65536
let max_stat_name = 1024
let max_stats = 4096
let max_lid = 256
let max_link_seq = 1 lsl 32
let max_txn = 1024

let add_int b n = Buffer.add_int64_le b (Int64.of_int n)
let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let add_string b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_payload b pl =
  add_int b (Tagged.v pl);
  add_bool b (Tagged.tag pl)

(* The two-bit sublanguage keeps its link header deliberately small: a
   one-byte link id and a four-byte sequence number.  Out-of-range
   values would not survive a round-trip, so the encoder refuses them
   outright instead of truncating silently. *)
let add_lid b lid =
  if lid < 0 || lid >= max_lid then
    invalid_arg (Fmt.str "Wire.encode: link id %d out of range" lid);
  Buffer.add_char b (Char.chr lid)

let add_seq b seq =
  if seq < 0 || seq >= max_link_seq then
    invalid_arg (Fmt.str "Wire.encode: link seq %d out of range" seq);
  Buffer.add_int32_le b (Int32.of_int seq)

(* Multi-key ops are bounded like link fields: an over-long key list
   would be rejected by every receiver, so refuse it at the encoder. *)
let add_txn_count b n =
  if n > max_txn then
    invalid_arg (Fmt.str "Wire.encode: %d keys exceed max_txn (%d)" n max_txn);
  add_int b n

(* Reconfiguration fields are indices and epochs: never negative by
   construction, and a negative value on the wire could only be a
   forgery or corruption — refuse at both ends. *)
let add_nonneg b what n =
  if n < 0 then invalid_arg (Fmt.str "Wire.encode: negative %s %d" what n);
  add_int b n

let rec encode_into b = function
  | Hello { proc } ->
    Buffer.add_char b '\000';
    add_int b proc
  | Req { seq; op } ->
    Buffer.add_char b '\001';
    add_int b seq;
    (match op with
     | Read -> Buffer.add_char b '\000'
     | Write v ->
       Buffer.add_char b '\001';
       add_int b v
     | Read_k { key } ->
       Buffer.add_char b '\002';
       add_int b key
     | Write_k { key; value } ->
       Buffer.add_char b '\003';
       add_int b key;
       add_int b value
     | Txn_k { writes } ->
       Buffer.add_char b '\004';
       add_txn_count b (List.length writes);
       List.iter
         (fun (key, value) ->
           add_int b key;
           add_int b value)
         writes
     | Snap_k { keys } ->
       Buffer.add_char b '\005';
       add_txn_count b (List.length keys);
       List.iter (add_int b) keys)
  | Resp { seq; result } ->
    Buffer.add_char b '\002';
    add_int b seq;
    (match result with
     | None -> Buffer.add_char b '\000'
     | Some v ->
       Buffer.add_char b '\001';
       add_int b v)
  | Query { rid; reg } ->
    Buffer.add_char b '\003';
    add_int b rid;
    add_int b reg
  | Query_reply { rid; reg; ts; pl } ->
    Buffer.add_char b '\004';
    add_int b rid;
    add_int b reg;
    add_int b ts;
    add_payload b pl
  | Store { rid; reg; ts; pl } ->
    Buffer.add_char b '\005';
    add_int b rid;
    add_int b reg;
    add_int b ts;
    add_payload b pl
  | Store_ack { rid; reg } ->
    Buffer.add_char b '\006';
    add_int b rid;
    add_int b reg
  | Batch msgs ->
    Buffer.add_char b '\007';
    add_int b (List.length msgs);
    List.iter
      (fun m ->
        let sub = Buffer.create 32 in
        encode_into sub m;
        add_int b (Buffer.length sub);
        Buffer.add_buffer b sub)
      msgs
  | Bye -> Buffer.add_char b '\008'
  | Stats_req { rid } ->
    Buffer.add_char b '\009';
    add_int b rid
  | Stats_reply { rid; stats } ->
    Buffer.add_char b '\010';
    add_int b rid;
    add_int b (List.length stats);
    List.iter
      (fun (name, v) ->
        add_string b name;
        add_int b v)
      stats
  | Store2 { lid; seq; reg; pl } ->
    Buffer.add_char b '\011';
    add_lid b lid;
    add_seq b seq;
    add_int b reg;
    add_payload b pl
  | Ack2 { lid; seq } ->
    Buffer.add_char b '\012';
    add_lid b lid;
    add_seq b seq
  | Query2 { lid; seq; reg } ->
    Buffer.add_char b '\013';
    add_lid b lid;
    add_seq b seq;
    add_int b reg
  | Query2_reply { lid; seq; pl } ->
    Buffer.add_char b '\014';
    add_lid b lid;
    add_seq b seq;
    add_payload b pl
  | Engine_hello { engine } ->
    if engine < 0 || engine > 255 then
      invalid_arg (Fmt.str "Wire.encode: engine code %d out of range" engine);
    Buffer.add_char b '\015';
    Buffer.add_char b (Char.chr engine)
  | Resp_snap { seq; values } ->
    Buffer.add_char b '\016';
    add_int b seq;
    add_txn_count b (List.length values);
    List.iter (add_int b) values
  | Reconfig { rid; key; to_shard; epoch } ->
    Buffer.add_char b '\017';
    add_int b rid;
    add_nonneg b "key" key;
    add_nonneg b "shard" to_shard;
    add_nonneg b "epoch" epoch
  | Reconfig_ack { rid; epoch; ok } ->
    Buffer.add_char b '\018';
    add_int b rid;
    add_nonneg b "epoch" epoch;
    add_bool b ok
  | Epoch_req { rid } ->
    Buffer.add_char b '\019';
    add_int b rid
  | Epoch_reply { rid; epoch; shards } ->
    Buffer.add_char b '\020';
    add_int b rid;
    add_nonneg b "epoch" epoch;
    add_nonneg b "shards" shards

let encode m =
  let b = Buffer.create 32 in
  encode_into b m;
  Buffer.contents b

exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then raise (Bad "truncated") in
  let int () =
    need 8;
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  let byte () =
    need 1;
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let payload () =
    let v = int () in
    let t = byte () <> 0 in
    Tagged.make v t
  in
  let seq32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let str () =
    let len = int () in
    if len < 0 || len > max_stat_name then raise (Bad "bad string length");
    need len;
    let s = String.sub s !pos len in
    pos := !pos + len;
    s
  in
  let nonneg what =
    let v = int () in
    if v < 0 then raise (Bad ("negative " ^ what));
    v
  in
  let rec msg depth =
    match byte () with
    | 0 -> Hello { proc = int () }
    | 1 ->
      let seq = int () in
      (match byte () with
       | 0 -> Req { seq; op = Read }
       | 1 -> Req { seq; op = Write (int ()) }
       | 2 -> Req { seq; op = Read_k { key = int () } }
       | 3 ->
         let key = int () in
         Req { seq; op = Write_k { key; value = int () } }
       | 4 ->
         let n = int () in
         if n < 0 || n > max_txn then raise (Bad "bad txn size");
         Req
           { seq;
             op =
               Txn_k
                 { writes =
                     List.init n (fun _ ->
                         let key = int () in
                         (key, int ()))
                 }
           }
       | 5 ->
         let n = int () in
         if n < 0 || n > max_txn then raise (Bad "bad snapshot size");
         Req { seq; op = Snap_k { keys = List.init n (fun _ -> int ()) } }
       | _ -> raise (Bad "bad op kind"))
    | 2 ->
      let seq = int () in
      (match byte () with
       | 0 -> Resp { seq; result = None }
       | 1 -> Resp { seq; result = Some (int ()) }
       | _ -> raise (Bad "bad result kind"))
    | 3 ->
      let rid = int () in
      Query { rid; reg = int () }
    | 4 ->
      let rid = int () in
      let reg = int () in
      let ts = int () in
      Query_reply { rid; reg; ts; pl = payload () }
    | 5 ->
      let rid = int () in
      let reg = int () in
      let ts = int () in
      Store { rid; reg; ts; pl = payload () }
    | 6 ->
      let rid = int () in
      Store_ack { rid; reg = int () }
    | 7 ->
      (* cap the nesting depth: an adversarial frame must not be able
         to recurse the decoder arbitrarily deep *)
      if depth >= max_batch_depth then raise (Bad "batch nested too deep");
      let n = int () in
      if n < 0 || n > max_batch then raise (Bad "bad batch size");
      Batch
        (List.init n (fun _ ->
             let len = int () in
             if len < 0 then raise (Bad "bad batch item length");
             let stop = !pos + len in
             let m = msg (depth + 1) in
             if !pos <> stop then raise (Bad "batch item length mismatch");
             m))
    | 8 -> Bye
    | 9 -> Stats_req { rid = int () }
    | 11 ->
      let lid = byte () in
      let seq = seq32 () in
      let reg = int () in
      Store2 { lid; seq; reg; pl = payload () }
    | 12 ->
      let lid = byte () in
      Ack2 { lid; seq = seq32 () }
    | 13 ->
      let lid = byte () in
      let seq = seq32 () in
      Query2 { lid; seq; reg = int () }
    | 14 ->
      let lid = byte () in
      let seq = seq32 () in
      Query2_reply { lid; seq; pl = payload () }
    | 15 -> Engine_hello { engine = byte () }
    | 16 ->
      let seq = int () in
      let n = int () in
      if n < 0 || n > max_txn then raise (Bad "bad snapshot size");
      Resp_snap { seq; values = List.init n (fun _ -> int ()) }
    | 10 ->
      let rid = int () in
      let n = int () in
      if n < 0 || n > max_stats then raise (Bad "bad stats size");
      Stats_reply
        { rid;
          stats =
            List.init n (fun _ ->
                let name = str () in
                (name, int ()))
        }
    | 17 ->
      let rid = int () in
      let key = nonneg "key" in
      let to_shard = nonneg "shard" in
      Reconfig { rid; key; to_shard; epoch = nonneg "epoch" }
    | 18 ->
      let rid = int () in
      let epoch = nonneg "epoch" in
      (match byte () with
       | 0 -> Reconfig_ack { rid; epoch; ok = false }
       | 1 -> Reconfig_ack { rid; epoch; ok = true }
       | _ -> raise (Bad "bad reconfig-ack flag"))
    | 19 -> Epoch_req { rid = int () }
    | 20 ->
      let rid = int () in
      let epoch = nonneg "epoch" in
      Epoch_reply { rid; epoch; shards = nonneg "shards" }
    | c -> raise (Bad (Fmt.str "unknown tag %d" c))
  in
  try
    let m = msg 0 in
    if !pos <> String.length s then Error "trailing bytes" else Ok m
  with Bad e -> Error e

let decode_exn s =
  match decode s with
  | Ok m -> m
  | Error e -> invalid_arg ("Wire.decode_exn: " ^ e)

(* Encoded body size, computed without allocating the encoding — the
   engine byte accounting calls this on every send.  Kept in lockstep
   with [encode] by a fuzz invariant (test_wire_fuzz). *)
let rec encoded_size = function
  | Hello _ -> 9
  | Req { op = Read; _ } -> 10
  | Req { op = Write _; _ } -> 18
  | Req { op = Read_k _; _ } -> 18
  | Req { op = Write_k _; _ } -> 26
  | Req { op = Txn_k { writes }; _ } -> 18 + (16 * List.length writes)
  | Req { op = Snap_k { keys }; _ } -> 18 + (8 * List.length keys)
  | Resp { result = None; _ } -> 10
  | Resp { result = Some _; _ } -> 18
  | Query _ -> 17
  | Query_reply _ -> 34
  | Store _ -> 34
  | Store_ack _ -> 17
  | Batch msgs ->
    List.fold_left (fun acc m -> acc + 8 + encoded_size m) 9 msgs
  | Bye -> 1
  | Stats_req _ -> 9
  | Stats_reply { stats; _ } ->
    List.fold_left
      (fun acc (name, _) -> acc + 8 + String.length name + 8)
      17 stats
  | Store2 _ -> 23
  | Ack2 _ -> 6
  | Query2 _ -> 14
  | Query2_reply _ -> 15
  | Engine_hello _ -> 2
  | Resp_snap { values; _ } -> 17 + (8 * List.length values)
  | Reconfig _ -> 33
  | Reconfig_ack _ -> 18
  | Epoch_req _ -> 9
  | Epoch_reply _ -> 25

(* Control metadata: the encoded bytes that are neither register index
   nor register payload — tags, request ids, timestamps, link headers,
   batching overhead.  This is the footprint the two-bit protocol
   shrinks: an ABD [Store] spends 17 control bytes (tag, rid, ts), the
   equivalent [Store2] spends 6 (tag, lid, 32-bit link seq). *)
let rec control_bytes m =
  let data =
    match m with
    | Hello _ | Bye | Stats_req _ | Stats_reply _ | Ack2 _ | Engine_hello _
    | Reconfig _ | Reconfig_ack _ | Epoch_req _ | Epoch_reply _ ->
      (* migration control frames carry no register data at all *)
      0
    | Req { op = Read; _ } | Resp { result = None; _ } -> 0
    | Req { op = (Write _ | Read_k _); _ } | Resp { result = Some _; _ } -> 8
    | Req { op = Write_k _; _ } -> 16
    | Req { op = Txn_k { writes }; _ } -> 16 * List.length writes
    | Req { op = Snap_k { keys }; _ } -> 8 * List.length keys
    | Resp_snap { values; _ } -> 8 * List.length values
    | Query _ | Store_ack _ | Query2 _ -> 8
    | Query_reply _ | Store _ | Store2 _ -> 17
    | Query2_reply _ -> 9
    | Batch msgs ->
      List.fold_left
        (fun acc sub -> acc + encoded_size sub - control_bytes sub)
        0 msgs
  in
  encoded_size m - data

let header_size = 8

let frame ~src m =
  let body = encode m in
  let n = String.length body in
  (* the receiver enforces [max_frame] on read; enforcing it here too
     turns an oversized message into a clean error at the sender
     instead of a length that the receiver rejects — and keeps the
     32-bit header length field from ever silently truncating *)
  if n > max_frame then
    invalid_arg
      (Fmt.str "Wire.frame: %d-byte message exceeds max_frame (%d)" n max_frame);
  let b = Bytes.create (header_size + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Int32.of_int src);
  Bytes.blit_string body 0 b header_size n;
  b

let parse_header b =
  (Int32.to_int (Bytes.get_int32_le b 0), Int32.to_int (Bytes.get_int32_le b 4))

let pp_payload ppf pl = Registers.Tagged.pp Fmt.int ppf pl

let rec pp ppf = function
  | Hello { proc } -> Fmt.pf ppf "hello(proc=%d)" proc
  | Req { seq; op = Read } -> Fmt.pf ppf "req#%d read" seq
  | Req { seq; op = Write v } -> Fmt.pf ppf "req#%d write(%d)" seq v
  | Req { seq; op = Read_k { key } } -> Fmt.pf ppf "req#%d read[%d]" seq key
  | Req { seq; op = Write_k { key; value } } ->
    Fmt.pf ppf "req#%d write[%d](%d)" seq key value
  | Req { seq; op = Txn_k { writes } } ->
    Fmt.pf ppf "req#%d txn{%a}" seq
      Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") int int))
      writes
  | Req { seq; op = Snap_k { keys } } ->
    Fmt.pf ppf "req#%d snap{%a}" seq Fmt.(list ~sep:(any ",") int) keys
  | Resp { seq; result = Some v } -> Fmt.pf ppf "resp#%d %d" seq v
  | Resp { seq; result = None } -> Fmt.pf ppf "resp#%d ack" seq
  | Query { rid; reg } -> Fmt.pf ppf "query#%d reg%d" rid reg
  | Query_reply { rid; reg; ts; pl } ->
    Fmt.pf ppf "query-reply#%d reg%d ts=%d %a" rid reg ts pp_payload pl
  | Store { rid; reg; ts; pl } ->
    Fmt.pf ppf "store#%d reg%d ts=%d %a" rid reg ts pp_payload pl
  | Store_ack { rid; reg } -> Fmt.pf ppf "store-ack#%d reg%d" rid reg
  | Batch msgs ->
    Fmt.pf ppf "batch[%a]" Fmt.(list ~sep:(any "; ") pp) msgs
  | Bye -> Fmt.pf ppf "bye"
  | Stats_req { rid } -> Fmt.pf ppf "stats-req#%d" rid
  | Stats_reply { rid; stats } ->
    Fmt.pf ppf "stats-reply#%d (%d entries)" rid (List.length stats)
  | Store2 { lid; seq; reg; pl } ->
    Fmt.pf ppf "store2@%d.%d reg%d %a" lid seq reg pp_payload pl
  | Ack2 { lid; seq } -> Fmt.pf ppf "ack2@%d.%d" lid seq
  | Query2 { lid; seq; reg } -> Fmt.pf ppf "query2@%d.%d reg%d" lid seq reg
  | Query2_reply { lid; seq; pl } ->
    Fmt.pf ppf "query2-reply@%d.%d %a" lid seq pp_payload pl
  | Engine_hello { engine } -> Fmt.pf ppf "engine-hello(%d)" engine
  | Resp_snap { seq; values } ->
    Fmt.pf ppf "resp-snap#%d {%a}" seq Fmt.(list ~sep:(any ",") int) values
  | Reconfig { rid; key; to_shard; epoch } ->
    Fmt.pf ppf "reconfig#%d key%d->shard%d@%d" rid key to_shard epoch
  | Reconfig_ack { rid; epoch; ok } ->
    Fmt.pf ppf "reconfig-ack#%d epoch=%d %s" rid epoch
      (if ok then "ok" else "nack")
  | Epoch_req { rid } -> Fmt.pf ppf "epoch-req#%d" rid
  | Epoch_reply { rid; epoch; shards } ->
    Fmt.pf ppf "epoch-reply#%d epoch=%d shards=%d" rid epoch shards
