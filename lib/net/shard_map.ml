(* Consistent placement of register ids onto shards and of shards onto
   replica groups.  Pure data: no I/O, no mutation after [create] — a
   reconfiguration produces a *new* map (see [advance]) stamped with
   the next epoch, so a map value may be shared freely across threads
   and epochs compare by integer. *)

type t = {
  shards : int;
  group_size : int option;
  epoch : int;
  overrides : (int * int) list;  (* key -> shard, newest placement wins *)
}

let regs_per_key = 2

(* SplitMix64 finalizer: a fixed, avalanching int mix so that nearby
   keys spread over shards instead of striping, and the placement is
   identical in every process of a cluster (no [Hashtbl.hash]
   versioning, no randomized seeds). *)
let mix k =
  let open Int64 in
  let z = of_int k in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  (* keep the low 62 bits: always a non-negative OCaml int, even after
     [to_int]'s 63-bit truncation *)
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

let create ?group_size ~shards () =
  if shards <= 0 then invalid_arg "Shard_map.create: shards must be positive";
  (match group_size with
   | Some g when g <= 0 ->
     invalid_arg "Shard_map.create: group_size must be positive"
   | _ -> ());
  { shards; group_size; epoch = 0; overrides = [] }

let shards t = t.shards
let epoch t = t.epoch
let overrides t = t.overrides

let base_shard_of_key t key =
  if t.shards = 1 then 0 else mix key mod t.shards

let shard_of_key t key =
  match List.assoc_opt key t.overrides with
  | Some s -> s
  | None -> base_shard_of_key t key

let advance t ~key ~to_shard =
  if key < 0 then invalid_arg "Shard_map.advance: negative key";
  if to_shard < 0 || to_shard >= t.shards then
    invalid_arg "Shard_map.advance: target shard out of range";
  let rest = List.remove_assoc key t.overrides in
  let overrides =
    (* an override that restores the hash placement is dropped, so a
       key migrated home leaves no residue and maps stay small *)
    if to_shard = base_shard_of_key t key then rest
    else (key, to_shard) :: rest
  in
  { t with epoch = t.epoch + 1; overrides }

let global_reg key i =
  if key < 0 then invalid_arg "Shard_map.global_reg: negative key";
  if i < 0 || i >= regs_per_key then
    invalid_arg "Shard_map.global_reg: register bit out of range";
  (key * regs_per_key) + i

let key_of_reg reg = reg / regs_per_key

let group t ~replicas shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Shard_map.group: shard out of range";
  let n = List.length replicas in
  match t.group_size with
  | None -> replicas
  | Some g when g >= n -> replicas
  | Some g ->
    (* rotate a window of g replicas, starting at a shard-determined
       offset: deterministic, static, and spreads load when there are
       more replicas than a single quorum group needs *)
    let arr = Array.of_list replicas in
    List.init g (fun i -> arr.((shard + i) mod n))

let pp ppf t =
  Fmt.pf ppf "shard-map(%d shard%s%a, epoch %d%s)" t.shards
    (if t.shards = 1 then "" else "s")
    Fmt.(option (fun ppf g -> Fmt.pf ppf ", group %d" g))
    t.group_size t.epoch
    (match t.overrides with
     | [] -> ""
     | os -> Fmt.str ", %d override%s" (List.length os)
               (if List.length os = 1 then "" else "s"))
