type key = { node : int; tag : string }

(* Two choices commute when they are handled by distinct nodes: a
   handler only touches its own node's state, so firing them in either
   order reaches the same global state.  Anything owned by node -1
   (global fates: partitions, heals) conservatively depends on
   everything. *)
let independent a b = a.node >= 0 && b.node >= 0 && a.node <> b.node

type 'a system = {
  reset : unit -> 'a;
  enabled : 'a -> key list;
  apply : 'a -> int -> unit;
}

type stats = {
  schedules : int;
  transitions : int;
  pruned : int;
  max_depth_seen : int;
  exhausted : bool;
}

(* Depth-first stateless search: states are mutable and cannot be
   un-applied, so visiting a sibling replays the schedule prefix from a
   fresh reset.  The first branch out of each state reuses the live
   state, which makes a straight-line (singleton-choice) run cost one
   replay total.

   Contract with [system]: [enabled] is called exactly once on a state
   before each [apply] — implementations may build the index → action
   table for [apply] as a side effect of [enabled]. *)
let explore ?(max_schedules = max_int) ?(max_depth = 1_000_000)
    ?(prune = true) sys ~on_leaf =
  let schedules = ref 0 in
  let transitions = ref 0 in
  let pruned = ref 0 in
  let deepest = ref 0 in
  let truncated = ref false in
  let stopped = ref false in
  let replay path =
    (* returns the state with [enabled] not yet called at the end *)
    let st = sys.reset () in
    List.iter
      (fun i ->
        ignore (sys.enabled st);
        sys.apply st i)
      path;
    st
  in
  let rec go st path_rev depth sleep =
    if not !stopped then begin
      if depth > !deepest then deepest := depth;
      let keys = Array.of_list (sys.enabled st) in
      let n = Array.length keys in
      if n = 0 || depth >= max_depth then begin
        if n > 0 then truncated := true;
        incr schedules;
        (match on_leaf st (List.rev path_rev) with
         | `Stop -> stopped := true
         | `Continue -> ());
        if !schedules >= max_schedules then begin
          if not !stopped then truncated := true;
          stopped := true
        end
      end
      else begin
        let consumed = ref false in
        let done_keys = ref [] in
        for i = 0 to n - 1 do
          if not !stopped then begin
            let k = keys.(i) in
            if prune && List.exists (fun s -> s = k) sleep then incr pruned
            else begin
              let child =
                if not !consumed then begin
                  consumed := true;
                  st
                end
                else begin
                  let st' = replay (List.rev path_rev) in
                  ignore (sys.enabled st');
                  st'
                end
              in
              sys.apply child i;
              incr transitions;
              let child_sleep =
                if prune then
                  List.filter (fun s -> independent s k) (sleep @ !done_keys)
                else []
              in
              go child (i :: path_rev) (depth + 1) child_sleep;
              done_keys := k :: !done_keys
            end
          end
        done
      end
    end
  in
  go (sys.reset ()) [] 0 [];
  {
    schedules = !schedules;
    transitions = !transitions;
    pruned = !pruned;
    max_depth_seen = !deepest;
    exhausted = not !truncated;
  }

(* Zeller–Hildebrandt delta debugging on lists: greedily remove chunks
   while [test] (= "still exhibits the failure") stays true. *)
let ddmin ~test xs =
  let remove_chunk xs start len =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 || n > len then xs
    else begin
      let chunk = max 1 (len / n) in
      let rec try_from start =
        if start >= len then None
        else
          let candidate = remove_chunk xs start chunk in
          if List.length candidate < len && test candidate then Some candidate
          else try_from (start + chunk)
      in
      match try_from 0 with
      | Some smaller -> go smaller (max 2 (n - 1))
      | None -> if chunk = 1 then xs else go xs (min len (2 * n))
    end
  in
  if test xs then go xs 2 else xs
