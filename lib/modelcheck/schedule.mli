(** Stateless schedule exploration with sleep-set pruning, over any
    mutable system that exposes its nondeterminism as an indexed choice
    of enabled actions.

    The client presents a {!system}: [reset] builds a fresh initial
    state, [enabled] lists the choices available in a state (as
    dependence {!key}s), [apply i] fires the [i]-th one.  States may be
    arbitrarily mutable — the explorer never needs to undo anything,
    it replays the choice-index prefix from a fresh [reset] to visit a
    sibling branch (Godefroid's stateless search).  A schedule is
    therefore just an [int list], replayable by construction.

    Pruning: two choices whose keys are {!independent} (distinct
    non-negative [node]s — i.e. handled by different processes, which
    share no state) commute, so exploring both orders is redundant.
    After fully exploring choice [a] from a state, [a] enters the
    {e sleep set} of its later siblings; a child's sleep set keeps only
    the members independent of the choice taken.  Sound for safety
    properties evaluated at leaves: every Mazurkiewicz trace retains at
    least one representative schedule. *)

type key = { node : int; tag : string }
(** Dependence key of an enabled choice.  [node] is the process whose
    state the action touches (negative = touches global state, depends
    on everything); [tag] disambiguates distinct actions with equal
    nodes (keys are compared structurally for sleep-set membership, so
    tags must be stable across replays). *)

val independent : key -> key -> bool
(** Distinct non-negative nodes. *)

type 'a system = {
  reset : unit -> 'a;  (** fresh initial state, deterministic *)
  enabled : 'a -> key list;
      (** choices available now; called exactly once on a state before
          each [apply], so it may (re)build the index → action table as
          a side effect.  Empty = leaf. *)
  apply : 'a -> int -> unit;
      (** fire the i-th choice of the preceding [enabled] *)
}

type stats = {
  schedules : int;  (** leaves visited (maximal schedules explored) *)
  transitions : int;  (** total [apply] calls, replays excluded *)
  pruned : int;  (** choices skipped by sleep sets *)
  max_depth_seen : int;
  exhausted : bool;
      (** no leaf was cut off by [max_depth] and the schedule budget
          did not run out: modulo pruning, the whole space was seen *)
}

val explore :
  ?max_schedules:int ->
  ?max_depth:int ->
  ?prune:bool ->
  'a system ->
  on_leaf:('a -> int list -> [ `Continue | `Stop ]) ->
  stats
(** Depth-first enumeration.  [on_leaf state schedule] sees every leaf
    (quiescent state or depth cut-off) with the schedule that reached
    it; returning [`Stop] aborts the search (e.g. first violation).
    Defaults: unbounded schedules, [max_depth] 1_000_000, pruning on. *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list
(** Delta-debugging list minimization: the smallest sublist this
    greedy chunk-removal finds on which [test] still holds.  [test] is
    assumed monotone-ish (classic ddmin caveat); if [test] fails on the
    input itself the input is returned unchanged. *)
