(** Summaries for the paper's quantitative claims and for the
    benchmark output. *)

type access_summary = {
  op_reads : int * int;
      (** (min, max) primitive reads over all simulated reads *)
  op_read_writes : int * int;
      (** (min, max) primitive writes over all simulated reads *)
  wr_reads : int * int;  (** same, over simulated writes *)
  wr_writes : int * int;
  n_reads : int;
  n_writes : int;
}

val summarise_accesses :
  ('c, 'v) Registers.Vm.trace_event list -> access_summary
(** Fold {!Registers.Vm.prim_counts} into the claims table: the paper
    says every simulated read costs exactly 3 real reads and every
    simulated write exactly 1 real read + 1 real write, i.e. all four
    ranges are degenerate. *)

val pp_access_summary : access_summary Fmt.t

module Reservoir : sig
  (** Bounded-memory uniform sampling of an unbounded stream of
      observations (Vitter's algorithm R), for latency percentiles
      over arbitrarily long runs.  Deterministic in [seed]. *)

  type t

  val create : ?capacity:int -> seed:int -> unit -> t
  (** [capacity] defaults to 2048 samples. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Observations offered, not retained. *)

  val sum : t -> float

  val max_value : t -> float
  (** [nan] when empty. *)

  val mean : t -> float
  (** [nan] when empty. *)

  val samples : t -> float array
  (** The retained sample (a fresh array); feed to {!percentile}. *)
end

val percentile : float array -> float -> float
(** [percentile samples p] with [0 <= p <= 100]; sorts a copy.
    @raise Invalid_argument on an empty array. *)

val percentile_opt : float array -> float -> float option
(** Total version of {!percentile}: [None] on an empty sample — the
    honest answer for a run that recorded nothing, where a made-up
    number (or a crash) in a latency report would be a lie.
    @raise Invalid_argument if [p] is out of range on a non-empty
    array. *)

val mean : float array -> float
