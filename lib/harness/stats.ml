type access_summary = {
  op_reads : int * int;
  op_read_writes : int * int;
  wr_reads : int * int;
  wr_writes : int * int;
  n_reads : int;
  n_writes : int;
}

let widen (lo, hi) x = (min lo x, max hi x)

let empty_range = (max_int, min_int)

let summarise_accesses trace =
  let counts = Registers.Vm.prim_counts trace in
  List.fold_left
    (fun acc (_, op, r, w) ->
      match op with
      | Histories.Event.Read ->
        {
          acc with
          op_reads = widen acc.op_reads r;
          op_read_writes = widen acc.op_read_writes w;
          n_reads = acc.n_reads + 1;
        }
      | Histories.Event.Write _ ->
        {
          acc with
          wr_reads = widen acc.wr_reads r;
          wr_writes = widen acc.wr_writes w;
          n_writes = acc.n_writes + 1;
        })
    {
      op_reads = empty_range;
      op_read_writes = empty_range;
      wr_reads = empty_range;
      wr_writes = empty_range;
      n_reads = 0;
      n_writes = 0;
    }
    counts

let pp_range ppf (lo, hi) =
  if lo > hi then Fmt.string ppf "-"
  else if lo = hi then Fmt.int ppf lo
  else Fmt.pf ppf "%d..%d" lo hi

let pp_access_summary ppf s =
  Fmt.pf ppf
    "@[<v>simulated read : %a real reads, %a real writes  (%d ops)@,\
     simulated write: %a real reads, %a real writes  (%d ops)@]"
    pp_range s.op_reads pp_range s.op_read_writes s.n_reads pp_range s.wr_reads
    pp_range s.wr_writes s.n_writes

module Reservoir = struct
  type t = {
    buf : float array;
    cap : int;
    rng : Random.State.t;
    mutable n : int;  (* total observations offered *)
    mutable sum : float;
    mutable maxv : float;
  }

  let create ?(capacity = 2048) ~seed () =
    if capacity <= 0 then invalid_arg "Stats.Reservoir.create: capacity";
    {
      buf = Array.make capacity 0.0;
      cap = capacity;
      rng = Random.State.make [| seed; 0x7265731b |];
      n = 0;
      sum = 0.0;
      maxv = neg_infinity;
    }

  (* Vitter's algorithm R: after n observations each one is retained
     with probability cap/n, so the kept samples are a uniform sample
     of the whole stream and percentiles stay unbiased however long
     the run. *)
  let add r x =
    if r.n < r.cap then r.buf.(r.n) <- x
    else begin
      let j = Random.State.int r.rng (r.n + 1) in
      if j < r.cap then r.buf.(j) <- x
    end;
    r.n <- r.n + 1;
    r.sum <- r.sum +. x;
    if x > r.maxv then r.maxv <- x

  let count r = r.n
  let sum r = r.sum
  let max_value r = if r.n = 0 then nan else r.maxv
  let mean r = if r.n = 0 then nan else r.sum /. float_of_int r.n
  let samples r = Array.sub r.buf 0 (min r.n r.cap)
end

let percentile samples p =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let idx = int_of_float (Float.of_int (n - 1) *. p /. 100.0 +. 0.5) in
  sorted.(max 0 (min (n - 1) idx))

let percentile_opt samples p =
  if Array.length samples = 0 then None else Some (percentile samples p)

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n
