module Vm = Registers.Vm

(* Fault schedules for the message-passing service.  Nodes are plain
   ints ({!Transport.node} values) because harness sits below net in
   the dependency order. *)
type net_fate =
  | Crash of int
  | Crash_amnesia of int
  | Restart of int
  | Partition of int list * int list
  | Heal

let pp_net_fate ppf = function
  | Crash r -> Fmt.pf ppf "crash %d" r
  | Crash_amnesia r -> Fmt.pf ppf "crash-amnesia %d" r
  | Restart r -> Fmt.pf ppf "restart %d" r
  | Partition (a, b) ->
    Fmt.pf ppf "partition [%a|%a]" Fmt.(list ~sep:comma int) a
      Fmt.(list ~sep:comma int) b
  | Heal -> Fmt.string ppf "heal"

let random_net_fates ~rng ~replicas ~server ~span ?max_crashes () =
  let n = List.length replicas in
  let minority = (n - 1) / 2 in
  let max_crashes =
    match max_crashes with None -> minority | Some m -> min m minority
  in
  let t_in lo hi = lo +. Random.State.float rng (Float.max epsilon_float (hi -. lo)) in
  let fates = ref [] in
  (* crashes: distinct victims, never more than a minority in total, so
     every quorum stays reachable and the run must complete *)
  let victims =
    List.filteri (fun i _ -> i < max_crashes)
      (List.sort
         (fun _ _ -> if Random.State.bool rng then 1 else -1)
         replicas)
  in
  let crashes = if victims = [] then 0 else Random.State.int rng (List.length victims + 1) in
  List.iteri
    (fun i r ->
      if i < crashes then begin
        let tc = t_in 0.0 (span *. 0.8) in
        (* half the crashes are amnesiac — the process really died and
           must restart from stable storage (or from nothing, which a
           durable harness should then catch) *)
        let fate = if Random.State.bool rng then Crash_amnesia r else Crash r in
        fates := (tc, fate) :: !fates;
        if Random.State.bool rng then
          fates := (t_in tc span, Restart r) :: !fates
      end)
    victims;
  (* at most one partition window, always healed before [span] *)
  if n >= 2 && Random.State.bool rng then begin
    let cut =
      List.filter (fun _ -> Random.State.bool rng) replicas
    in
    let cut = if cut = [] || List.length cut = n then [ List.hd replicas ] else cut in
    let rest =
      server :: List.filter (fun r -> not (List.mem r cut)) replicas
    in
    let t0 = t_in 0.0 (span *. 0.7) in
    let t1 = t_in t0 span in
    fates := (t0, Partition (cut, rest)) :: (t1, Heal) :: !fates
  end;
  List.sort (fun (a, _) (b, _) -> Float.compare a b) !fates

type write_fate =
  | Never_happened
  | Took_effect

let fate_of_crashed_write ~victim trace =
  (* Find the victim's last Invoke; if it has no matching Respond, the
     operation is the interrupted one: its fate is decided by whether a
     primitive write by the victim follows the Invoke. *)
  let events = Array.of_list trace in
  let n = Array.length events in
  let last_inv = ref None and responded = ref true in
  Array.iteri
    (fun i ev ->
      match ev with
      | Vm.Sim (Histories.Event.Invoke (p, _)) when p = victim ->
        last_inv := Some i;
        responded := false
      | Vm.Sim (Histories.Event.Respond (p, _)) when p = victim ->
        responded := true
      | Vm.Sim _ | Vm.Prim_read _ | Vm.Prim_write _ -> ())
    events;
  match !last_inv, !responded with
  | None, _ | Some _, true -> None
  | Some inv, false ->
    let wrote = ref false in
    for i = inv + 1 to n - 1 do
      match events.(i) with
      | Vm.Prim_write (p, _, _) when p = victim -> wrote := true
      | Vm.Prim_write _ | Vm.Prim_read _ | Vm.Sim _ -> ()
    done;
    Some (if !wrote then Took_effect else Never_happened)

let crash_writer_everywhere ~seed ~init ~victim ~processes ~build =
  ignore init;
  let victim_accesses =
    (* run once uncrashed to count the victim's accesses *)
    let trace = Registers.Run_coarse.run ~seed (build ()) processes in
    List.fold_left
      (fun n ev ->
        match ev with
        | Vm.Prim_read (p, _, _) | Vm.Prim_write (p, _, _) when p = victim ->
          n + 1
        | Vm.Prim_read _ | Vm.Prim_write _ | Vm.Sim _ -> n)
      0 trace
  in
  List.init (victim_accesses + 1) (fun k ->
      let trace =
        Registers.Run_coarse.run ~crash:[ (victim, k) ] ~seed (build ())
          processes
      in
      let fate =
        match fate_of_crashed_write ~victim trace with
        | Some f -> f
        | None -> Never_happened (* victim finished everything before k *)
      in
      (k, fate, trace))
