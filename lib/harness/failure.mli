(** Crash-failure scenarios (Section 5: "if the writer crashes at some
    point in the protocol, the write either occurs or does not occur;
    it does not leave the register in an inconsistent state").

    Built on {!Registers.Run_coarse}'s crash injection: a processor is
    killed after its k-th primitive access and never acknowledges. *)

(** {2 Network fault schedules}

    Timed fate schedules for the message-passing service's torture
    harness.  Nodes are plain ints (the transport node numbers) because
    harness sits below net in the library order; net's [Sim_run]
    interprets them. *)

type net_fate =
  | Crash of int
      (** replica stops receiving; volatile state retained (a pause,
          not a death) *)
  | Crash_amnesia of int
      (** replica dies: volatile state is lost, and a later [Restart]
          must recover from stable storage — or come back empty when
          the harness runs without durability *)
  | Restart of int  (** undo a crash; amnesiac nodes recover first *)
  | Partition of int list * int list  (** sever links between groups *)
  | Heal  (** remove the active partition *)

val pp_net_fate : net_fate Fmt.t

val random_net_fates :
  rng:Random.State.t ->
  replicas:int list ->
  server:int ->
  span:float ->
  ?max_crashes:int ->
  unit ->
  (float * net_fate) list
(** A random liveness-preserving fate schedule over virtual-time
    window [[0, span]], sorted by time: at most [max_crashes] (default
    and hard cap: a minority of [replicas]) distinct replicas crash —
    each a coin-flip between [Crash] and [Crash_amnesia], each possibly
    restarting later — and at most one partition window
    cuts a subset of replicas from the rest and the [server], always
    healed within the window.  Under such a schedule every quorum
    operation can eventually complete, so a harness may assert both
    atomicity {e and} completion. *)

type write_fate =
  | Never_happened  (** crashed before its real write *)
  | Took_effect  (** crashed at/after its real write *)

val crash_writer_everywhere :
  seed:int ->
  init:int ->
  victim:Histories.Event.proc ->
  processes:int Registers.Vm.process list ->
  build:(unit -> (int Registers.Tagged.t, int) Registers.Vm.built) ->
  (int * write_fate * (int Registers.Tagged.t, int) Registers.Vm.trace_event list) list
(** Run the workload once per crash point [k = 0, 1, 2, ...] of the
    victim writer (until the crash point exceeds the victim's total
    accesses), returning for each the crash point, the fate of the
    victim's in-flight write, and the trace.  The fate is derived from
    the trace: [Took_effect] iff the victim's interrupted write
    performed its primitive write. *)

val fate_of_crashed_write :
  victim:Histories.Event.proc ->
  (int Registers.Tagged.t, int) Registers.Vm.trace_event list ->
  write_fate option
(** [None] when the victim has no pending (unacknowledged) write in the
    trace. *)
