(** Workload generation for model runs, model checking and
    shared-memory stress tests. *)

type spec = {
  writers : int;  (** processors [0 .. writers-1] write *)
  readers : int;  (** processors [writers ..] read *)
  writes_each : int;
  reads_each : int;
}

val unique_scripts : spec -> int Registers.Vm.process list
(** Scripts whose written values are pairwise distinct and non-zero
    (initial value 0), so the fast unique-value checker applies:
    writer [p]'s [k]-th write writes [1000 * (p + 1) + k]. *)

val random_scripts :
  seed:int ->
  procs:int ->
  ops_each:int ->
  writer:(Histories.Event.proc -> bool) ->
  int Registers.Vm.process list
(** Random mix: writer processors write unique values or read; readers
    only read.  Operation counts are exactly [ops_each] per
    processor. *)

val random_spec :
  rng:Random.State.t -> ?max_readers:int -> ?max_ops:int -> unit -> spec
(** A random small workload shape for torture runs: always the two
    writer roles, [1 .. max_readers] readers (default cap 3), and
    [1 .. max_ops] writes/reads per processor (default cap 8).  Feed to
    {!unique_scripts} so the unique-value checkers apply. *)

val zipfian_keyed :
  ?s:float ->
  seed:int ->
  keys:int ->
  procs:int ->
  ops_each:int ->
  writer:(Histories.Event.proc -> bool) ->
  unit ->
  (Histories.Event.proc * (int * int Histories.Event.op) list) list
(** Keyed scripts whose keys are drawn Zipf([s])-distributed over
    [0 .. keys-1] (default exponent 1.2): key 0 is the hot key, which
    is what a live-resharding benchmark migrates mid-run to watch the
    load follow it.  One [(proc, script)] pair per processor; writer
    processors mix unique-valued writes (see {!unique_scripts}) with
    reads, reader processors only read.  Deterministic in [seed].
    @raise Invalid_argument if [keys] is not positive. *)

val values_written : int Registers.Vm.process list -> int list
