type spec = {
  writers : int;
  readers : int;
  writes_each : int;
  reads_each : int;
}

let unique_value ~proc ~k = (1000 * (proc + 1)) + k

let unique_scripts spec =
  let open Histories.Event in
  let writer p =
    {
      Registers.Vm.proc = p;
      script = List.init spec.writes_each (fun k -> Write (unique_value ~proc:p ~k));
    }
  in
  let reader p =
    { Registers.Vm.proc = p; script = List.init spec.reads_each (fun _ -> Read) }
  in
  List.init spec.writers writer
  @ List.init spec.readers (fun i -> reader (spec.writers + i))

let random_scripts ~seed ~procs ~ops_each ~writer =
  let open Histories.Event in
  let rng = Random.State.make [| seed |] in
  List.init procs (fun p ->
      let script =
        List.init ops_each (fun k ->
            if writer p && Random.State.bool rng then
              Write (unique_value ~proc:p ~k)
            else Read)
      in
      { Registers.Vm.proc = p; script })

let random_spec ~rng ?(max_readers = 3) ?(max_ops = 8) () =
  {
    writers = 2;
    readers = 1 + Random.State.int rng max_readers;
    writes_each = 1 + Random.State.int rng max_ops;
    reads_each = 1 + Random.State.int rng max_ops;
  }

(* Zipf(s) over [0 .. keys-1] by inverse CDF: rank i + 1 gets weight
   (i+1)^-s, so key 0 is the hot key — what a resharding benchmark
   migrates.  The CDF is tiny (keys entries), a linear scan beats
   anything cleverer. *)
let zipf_cdf ~keys ~s =
  let w = Array.init keys (fun i -> (float_of_int (i + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick cdf rng =
  let u = Random.State.float rng 1.0 in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || u <= cdf.(i) then i else go (i + 1) in
  go 0

let zipfian_keyed ?(s = 1.2) ~seed ~keys ~procs ~ops_each ~writer () =
  if keys <= 0 then invalid_arg "Workload.zipfian_keyed: keys must be positive";
  let open Histories.Event in
  let rng = Random.State.make [| seed; 0x7a697066 |] in
  let cdf = zipf_cdf ~keys ~s in
  List.init procs (fun p ->
      let script =
        List.init ops_each (fun k ->
            let key = zipf_pick cdf rng in
            if writer p && Random.State.bool rng then
              (key, Write (unique_value ~proc:p ~k))
            else (key, Read))
      in
      (p, script))

let values_written processes =
  List.concat_map
    (fun (p : int Registers.Vm.process) ->
      List.filter_map
        (function
          | Histories.Event.Write v -> Some v
          | Histories.Event.Read -> None)
        p.Registers.Vm.script)
    processes
