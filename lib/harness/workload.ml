type spec = {
  writers : int;
  readers : int;
  writes_each : int;
  reads_each : int;
}

let unique_value ~proc ~k = (1000 * (proc + 1)) + k

let unique_scripts spec =
  let open Histories.Event in
  let writer p =
    {
      Registers.Vm.proc = p;
      script = List.init spec.writes_each (fun k -> Write (unique_value ~proc:p ~k));
    }
  in
  let reader p =
    { Registers.Vm.proc = p; script = List.init spec.reads_each (fun _ -> Read) }
  in
  List.init spec.writers writer
  @ List.init spec.readers (fun i -> reader (spec.writers + i))

let random_scripts ~seed ~procs ~ops_each ~writer =
  let open Histories.Event in
  let rng = Random.State.make [| seed |] in
  List.init procs (fun p ->
      let script =
        List.init ops_each (fun k ->
            if writer p && Random.State.bool rng then
              Write (unique_value ~proc:p ~k)
            else Read)
      in
      { Registers.Vm.proc = p; script })

let random_spec ~rng ?(max_readers = 3) ?(max_ops = 8) () =
  {
    writers = 2;
    readers = 1 + Random.State.int rng max_readers;
    writes_each = 1 + Random.State.int rng max_ops;
    reads_each = 1 + Random.State.int rng max_ops;
  }

let values_written processes =
  List.concat_map
    (fun (p : int Registers.Vm.process) ->
      List.filter_map
        (function
          | Histories.Event.Write v -> Some v
          | Histories.Event.Read -> None)
        p.Registers.Vm.script)
    processes
